(** Durable memory transactions — libmtm (paper section 5).

    A word-based software transactional memory in the TinySTM mould,
    made durable with write-ahead redo logging into per-thread tornbit
    RAWLs:

    - {e lazy version management}: writes are buffered in a volatile
      write set; reads check the write set first and return buffered
      values ("memory at a variable's address still contains unmodified
      values" during the transaction);
    - {e encounter-time locking}: the first write to a location
      acquires its lock from the global {!Lock_table}; hitting a lock
      owned by another transaction aborts;
    - {e commit}: validate the read set, take a {!Timestamp}, stream
      the redo record to this thread's RAWL and flush it with the
      single tornbit fence — the durability point — then write the new
      values back and release the locks with the commit timestamp;
    - {e truncation}: [`Sync] forces the written cache lines to SCM and
      truncates the log inside commit; [`Async] queues the work for a
      truncation daemon, shortening commit latency at the risk of
      stalling when the log fills (paper figure 6);
    - {e recovery}: at pool creation every thread log is scanned and
      complete records are replayed in global-timestamp order.

    The paper's compiler turns [atomic] blocks into calls equivalent to
    {!load} and {!store}; here those calls are written by hand. *)

type pool
type thread
type t  (** An executing transaction. *)

type truncation = Sync | Async

(** The design choice of paper section 5.  [Lazy_redo] is Mnemosyne's
    choice: writes are buffered and logged as redo records, so "the
    only requirement is that the log is written completely before any
    data values are updated" — one fence per transaction.  [Eager_undo]
    is the alternative the paper rejects: writes go to memory in place
    and the old value is logged first, "ordering a log write before
    every memory update" — one fence per first write to each word.
    Implemented so the trade-off is measurable (the ablation_undo bench
    section).  Undo commits by log truncation, so it cannot be combined
    with [Async]. *)
type version_mgmt = Lazy_redo | Eager_undo

(** Conflict-management policy.  [Cm_legacy] (default) aborts on any
    foreign lock owner and backs off linearly with random jitter —
    bit-identical to before the knob existed.  [Cm_adaptive] adds
    timestamp-priority waiting (wait-die: the older transaction polls a
    bounded [cm_wait_ns] for a younger owner to release and then
    retries the access; a younger transaction aborts at once, so wait
    chains run strictly old-to-young and cannot deadlock) and a capped
    exponential retry backoff scaled by how contended the aborting
    cache line has been.  Priority stamps are assigned once per {!run}
    — not per attempt — so a transaction that keeps retrying ages into
    higher priority (karma), which is what flattens the contended
    throughput curve.  The backoff jitter still comes from the same
    4-way draw as the legacy policy, so recorded schedules replay
    bit-exactly under either manager. *)
type cm = Cm_legacy | Cm_adaptive

type config = {
  nthreads : int;  (** Thread slots (each gets a persistent log). *)
  log_cap_words : int;  (** Per-thread log buffer capacity. *)
  truncation : truncation;
  version_mgmt : version_mgmt;
  lock_bits : int;  (** Per-stripe lock table size = 2^lock_bits. *)
  max_attempts : int;  (** Retries before [Contention] is raised. *)
  ts_lease : int;
      (** Commit timestamps leased to a thread per shared-counter
          transaction.  1 (the default) is the original draw-per-commit
          protocol, bit-identical to before the knob existed.  Above 1,
          commits draw from a thread-private lease and only refills
          touch the shared line; leased values can leave the counter in
          non-arrival order, so readers watermark the locks they
          validate against ({!Lock_table.bump_rts}) and writers draw
          above that watermark — cts order remains the serialization
          (and recovery replay) order, which the {!History} oracle
          checks. *)
  lock_stripes : int;
      (** Lock-table stripes (power of two; default 1 = the original
          flat table).  Adjacent lines map to different stripes and the
          total entry count multiplies, cutting both metadata
          false-sharing and index aliasing. *)
  group_commit : bool;
      (** Share one durability fence among transactions retiring in the
          same drain window (redo logging only), and batch synchronous
          truncations [gc_trunc_batch] at a time.  Default false. *)
  gc_window_ns : int;
      (** How long a group-commit leader lingers gathering companions
          before fencing (skipped when running alone); 0 fences
          immediately with whoever has already arrived. *)
  gc_trunc_batch : int;
      (** Under [group_commit], synchronous truncations are deferred
          and retired in batches of this size: one data-line flush pass
          (hot lines deduped) and one head advance per batch. *)
  pipeline : bool;
      (** Pipelined commit (redo logging only; default false).  The
          durability point stays log-append + one fence, but the commit
          then writes the new values into the cache, queues the
          expensive tail — data-line flushing and log truncation — for
          the pool drainer, and releases its write locks immediately at
          the commit timestamp.  Transaction [n+1] runs while
          transaction [n]'s write-back drains; readers are correct
          because the committed values are visible through the cache,
          and a crash is covered because recovery replays the still
          unretired record.  Wire a daemon via {!set_drain_wake} +
          {!drain_pipeline}; without one, producers drain their own
          queue at the window bound (batched inline truncation). *)
  pipe_window : int;
      (** Commits in flight awaiting write-back per thread before the
          producer blocks (the profiler's drain-wait phase). *)
  cm : cm;  (** Conflict-management policy. *)
  cm_wait_ns : int;
      (** [Cm_adaptive]: how long an older transaction polls for a
          younger lock owner to release before giving up and aborting. *)
  cm_backoff_cap_ns : int;
      (** [Cm_adaptive]: ceiling of the exponential retry backoff. *)
}

val default_config : config
(** 4 threads, 64 Ki-word logs, synchronous truncation, redo logging,
    2^18 locks; every scalable-commit knob off (lease 1, one stripe,
    no group commit) — the exact original protocol. *)

exception Contention
(** A transaction aborted [max_attempts] times in a row. *)

exception Cancelled
(** Raised past {!run} when the user calls {!cancel}. *)

val create_pool :
  ?config:config -> Region.Pmem.t -> Pmheap.Heap.t option -> pool
(** Set up (or recover) the transaction system: finds each thread's log
    region through a [pstatic] root, creating it on first run, replays
    committed-but-unflushed transactions in timestamp order, and
    truncates the logs. *)

val recovered_txns : pool -> int
(** Transactions replayed by recovery at pool creation. *)

val config : pool -> config
val pmem : pool -> Region.Pmem.t

val thread : pool -> int -> Scm.Env.t -> thread
(** Bind thread slot [i] to an execution environment.  Each concurrent
    simulated thread must use its own slot. *)

val run : thread -> (t -> 'a) -> 'a
(** Execute an [atomic] block: retries on conflict (with backoff),
    commits on normal return.  Effects on persistent memory through
    {!load}/{!store}/{!alloc}/{!free} are atomic and durable; do not
    perform other side effects inside.  Nested [run] on the same thread
    is flattened into the outer transaction. *)

val cancel : t -> 'a
(** Abort the transaction without retrying; {!run} raises {!Cancelled}. *)

val thread_id : t -> int
(** Slot of the thread running this transaction; data structures use it
    to pick per-thread shards (counters, arenas). *)

(** {1 Transactional accesses} *)

val load : t -> int -> int64
val store : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> Bytes.t
(** [read_bytes tx addr len]: byte range via word loads ([addr] must be
    8-aligned). *)

val write_bytes : t -> int -> Bytes.t -> unit
(** Write a byte range via word stores ([addr] 8-aligned; the bytes of
    the final partial word, if any, are zero-padded). *)

val alloc : t -> int -> slot:int -> int
(** Transactional [pmalloc]: reserves a block and routes the bitmap and
    pointer-slot writes through this transaction, so the allocation
    commits or aborts with it.  Sizes above {!Pmheap.Heap.small_limit}
    fall back to an immediate raw allocation compensated on abort.
    Requires the pool to have a heap. *)

val free : t -> slot:int -> unit
(** Transactional [pfree] of the block the slot points at; clears the
    slot. *)

val free_addr : t -> int -> unit
(** Transactional free by block address, for blocks just unlinked from
    a structure inside this same transaction (no slot points at them
    any more).  The caller is responsible for having removed every
    persistent reference transactionally. *)

(** {1 Asynchronous truncation} *)

val pending_truncations : thread -> int

val log_occupancy : thread -> int * int
(** [(used_words, capacity_words)] of this thread's RAWL right now —
    the volatile cursors only, no SCM traffic and no yield point.  An
    admission controller probes this before dispatching a request so it
    can shed load {e before} a producer wedges in the log-full stall
    path (DESIGN.md section 17). *)

val process_truncations : thread -> Region.Pmem.view -> int
(** Daemon body: flush the data of committed transactions queued on
    this thread's log and advance the log head past them.  Costs are
    charged to the daemon view's environment.  Returns records
    processed. *)

val process_one_truncation : thread -> Region.Pmem.view -> bool
(** Process a single queued record; false when the queue is empty.
    Lets a daemon interleave its work with CPU-availability accounting
    (the figure-6 harness). *)

val drain_truncations_blocking : thread -> unit
(** Producer-side fallback when the log is full and no daemon keeps up:
    process this thread's own queue synchronously. *)

(** {1 Pipelined commit} *)

val drain_pipeline : ?shard:int * int -> pool -> Region.Pmem.view -> bool
(** One sweep of the pipelined-commit drainer: pop every bound thread's
    pending write-backs, charge the work-descriptor reads to [view]'s
    fiber (the commit handed over the write-set addresses in DRAM, so
    unlike the legacy truncation daemon nothing is re-read from the
    log), flush the union of the batch's data lines under one fence,
    then advance every log's head with one combined fence.  False when
    no thread had work.  [shard:(k, n)] restricts the sweep to threads
    with [id mod n = k] — one drainer fiber serializes its producers'
    flush traffic, so large pools deploy several daemons, each owning a
    shard.  Made for {!Sim.Service}:
    [Service.spawn sim ~work:(fun () -> Txn.drain_pipeline pool dview)]
    — the daemon's traffic overlaps the producers' next transactions. *)

val set_drain_wake : pool -> (int -> unit) option -> unit
(** Hook the drainer daemons' wake-up ({!Sim.Service.wake}).  Called
    with the committing thread's id whenever a pipelined commit queues
    write-back work, so a sharded deployment wakes the daemon owning
    that thread; [None] (the default) leaves producers draining their
    own queues at the window bound. *)

(** {1 Statistics and observability} *)

type stats = {
  commits : int;
  aborts : int;
  read_only_commits : int;
  retries : int;  (** Aborted attempts that were retried. *)
  contention_failures : int;  (** [run] calls that raised {!Contention}. *)
  log_full_stalls : int;
      (** Commits that blocked on a full log draining its own
          truncation queue (paper figure 6's stall regime). *)
}

val stats : pool -> stats
val reset_stats : pool -> unit
(** Also clears {!backoff_ns}, {!cm_waits} and the per-line abort
    attribution. *)

val backoff_ns : pool -> int
(** Total simulated time spent in retry backoff and contention-manager
    waits since the last {!reset_stats} — the benchmark's
    backoff-time breakdown. *)

val cm_waits : pool -> int
(** Times an older transaction waited on a younger lock owner
    ([Cm_adaptive] only). *)

val abort_attribution : pool -> (int * int) list
(** Per-64-byte-line abort counts [(line_addr, aborts)], hottest line
    first: which addresses the contention manager is fighting over. *)

val obs : pool -> Obs.t
(** The observability handle of the machine this pool runs on.  Commit
    latencies feed the [mtm.commit.*_ns] histograms on its metrics
    registry (total / log_write / fence / write_back / stm, the paper
    table-5 breakdown); transaction lifecycle events feed its trace
    when tracing is enabled. *)

type log_usage = { slot : int; base : int; cap_words : int; used : int }

val log_usage : pool -> log_usage list
(** Per-thread-slot log occupancy as of pool creation (recovery-time
    attach).  Thread-local handles advance independently afterwards, so
    this is exact only before threads run — which is when inspection
    tools ([regionctl stats]) read it. *)

(** {1 Schedule-exploration hooks}

    Both hooks are [None] by default: the hot paths pay one branch and
    the default schedule stays bit-identical.  The schedule explorer
    ([bin/sched_explore]) installs them to collect a {!History} and to
    make retry backoff replay-deterministic. *)

val set_history_hook : pool -> (History.event -> unit) option -> unit
(** When set, every transaction outcome is reported: commits with their
    first-read values, write set, and commit timestamp (read-only
    commits carry their validated [rv]); aborts with the attempt
    number.  Feed the events to {!History.add} and run {!History.check}
    to test the run for conflict serializability. *)

val set_backoff_draw : pool -> (int -> int) option -> unit
(** When set, the randomized retry-backoff jitter is drawn through this
    function (give it {!Sim.Schedule.draw}) instead of the thread-local
    rng, so a recorded schedule replays the exact backoff delays. *)

val set_txprof : pool -> Obs.Txprof.t option -> unit
(** Install a per-transaction profile ledger ([None] by default, same
    one-branch discipline as the exploration hooks).  When set, every
    commit — read-only included — records a phase-partitioned profile
    entry: execution, validation, log encode+append, fence, write-back,
    truncation wait, backoff, and residual bookkeeping sum exactly to
    the transaction's duration (first attempt begin to commit return).
    Maintaining the ledger reads the simulated clock but never charges
    time, draws randomness, or allocates on the steady-state path. *)

val txprof : pool -> Obs.Txprof.t option

val set_race : pool -> Race_api.hooks option -> unit
(** Install race-detection hooks over the pool's volatile coordination
    state ([None] by default, same one-branch discipline as the other
    exploration hooks) and propagate them to the lock table, the
    timestamp source, and every bound thread's log.  Annotated state
    (DESIGN.md section 18): the per-thread pending-truncation queue is
    a channel (push = release, pop = acquire) whose descriptors are
    individually checked plain locations — a wake/drain protocol hole
    shows up as a data race on a descriptor; the [draining] flag,
    group-commit leader flag / waiter list / per-thread done flags, the
    contention-manager stamps and abort-line table, and the global
    transaction-id counter are single-word sync objects.  Threads bound
    after installation inherit the hooks. *)
