(** Reusable open-addressed int-keyed write-set for the commit hot
    path.

    An [addr -> int64] map whose steady state allocates nothing: keys
    in a linear-probing [int array], values unboxed in a [Bytes]
    buffer, insertion order in a dense array.  {!clear} recycles the
    tables in place, so one write-set per thread serves every
    transaction attempt.  Keys must be non-negative (persistent
    addresses are). *)

type t

val create : ?initial:int -> unit -> t
val size : t -> int
(** Number of distinct keys. *)

val clear : t -> unit
(** Empty the map, keeping its tables for reuse (no allocation). *)

val mem : t -> int -> bool

val set : t -> int -> int64 -> unit
(** Insert or overwrite. *)

val find_slot : t -> int -> int
(** Internal slot of a key, or [-1] when absent.  Splitting lookup
    into [find_slot] + {!value_at} lets callers test membership and
    read the value without allocating an [option] or a boxed
    [Int64]. *)

val value_at : t -> int -> int64
(** Value in a slot returned by {!find_slot} (which must be [>= 0]). *)

val blit_value : t -> int -> Bytes.t -> int -> unit
(** [blit_value t slot dst off] copies the 8-byte value in [slot]
    into [dst] at [off] without materializing a boxed [Int64]. *)

val get : t -> int -> int64
(** Value of a present key (unchecked: the key must be present). *)

val key : t -> int -> int
(** [key t i] is the [i]-th distinct key in insertion order,
    [0 <= i < size t]. *)

val blit_keys : t -> int array -> int
(** Copy all keys, insertion-ordered, into a caller buffer of length
    [>= size t]; returns the count. *)

val sort_prefix : int array -> len:int -> unit
(** In-place ascending sort of the first [len] elements with
    monomorphic int comparisons (commit write-ordering and line-flush
    dedup use this instead of polymorphic [compare]). *)
