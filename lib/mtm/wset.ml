(* Reusable open-addressed int-keyed write-set.

   The commit hot path needs an addr -> int64 map with zero steady-state
   allocation: keys live in a linear-probing int array (-1 = empty, so
   addresses must be non-negative — ours are), values live unboxed in a
   [Bytes] buffer (8 bytes per slot, read/written with the int64
   accessors, which never allocates a boxed [Int64]), and insertion
   order is kept in a dense array so undo rollback can replay
   newest-first and commit can sort a prefix for ascending write-back.
   [clear] resets in O(table size) array fills — no rehash, no frees —
   so a transaction attempt reuses its thread's tables without touching
   the allocator. *)

type t = {
  mutable mask : int;
  mutable keys : int array;  (* key, or -1 for empty *)
  mutable vals : Bytes.t;  (* 8 bytes per slot, unboxed int64 values *)
  mutable order : int array;  (* distinct keys, insertion order *)
  mutable used : int array;  (* table slot of [order.(i)]'s entry *)
  mutable n : int;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let create ?(initial = 64) () =
  let size = next_pow2 (max 16 initial) 16 in
  {
    mask = size - 1;
    keys = Array.make size (-1);
    vals = Bytes.create (size * 8);
    order = Array.make size 0;
    used = Array.make size 0;
    n = 0;
  }

let size t = t.n

(* O(entries), not O(table): one giant transaction (region boot, crash
   replay) grows the table for good, and a full [Array.fill] here would
   tax every later transaction with clearing thousands of empty
   slots. *)
let clear t =
  for i = 0 to t.n - 1 do
    t.keys.(t.used.(i)) <- -1
  done;
  t.n <- 0

let[@inline] hash t k = (k * 0x2545F4914F6CDD1D) lsr 1 land t.mask

(* Slot holding [k], or -1 when absent. *)
let[@inline] find_slot t k =
  let keys = t.keys and mask = t.mask in
  let i = ref (hash t k) in
  let c = ref keys.(!i) in
  while !c <> k && !c <> -1 do
    i := (!i + 1) land mask;
    c := keys.(!i)
  done;
  if !c = k then !i else -1

let[@inline] value_at t slot = Bytes.get_int64_le t.vals (slot * 8)
let mem t k = find_slot t k >= 0

let grow t =
  let old_vals = t.vals and old_used = t.used in
  let size = 2 * Array.length t.keys in
  t.mask <- size - 1;
  t.keys <- Array.make size (-1);
  t.vals <- Bytes.create (size * 8);
  t.order <- Array.append t.order (Array.make (Array.length t.order) 0);
  t.used <- Array.make (Array.length t.order) 0;
  for i = 0 to t.n - 1 do
    let k = t.order.(i) in
    let mask = t.mask in
    let j = ref (hash t k) in
    while t.keys.(!j) <> -1 do
      j := (!j + 1) land mask
    done;
    t.keys.(!j) <- k;
    Bytes.set_int64_le t.vals (!j * 8)
      (Bytes.get_int64_le old_vals (old_used.(i) * 8));
    t.used.(i) <- !j
  done

let set t k v =
  if k < 0 then invalid_arg "Wset.set: negative key";
  let slot = find_slot t k in
  if slot >= 0 then Bytes.set_int64_le t.vals (slot * 8) v
  else begin
    if 2 * (t.n + 1) > Array.length t.keys then grow t;
    let mask = t.mask in
    let i = ref (hash t k) in
    while t.keys.(!i) <> -1 do
      i := (!i + 1) land mask
    done;
    t.keys.(!i) <- k;
    Bytes.set_int64_le t.vals (!i * 8) v;
    t.order.(t.n) <- k;
    t.used.(t.n) <- !i;
    t.n <- t.n + 1
  end

let key t i = t.order.(i)
let get t k = value_at t (find_slot t k)

let blit_value t slot dst off = Bytes.blit t.vals (slot * 8) dst off 8

let blit_keys t dst =
  Array.blit t.order 0 dst 0 t.n;
  t.n

(* In-place ascending sort of [a.(0 .. len-1)]: monomorphic int
   comparisons only (no polymorphic [compare]), quicksort on
   median-of-three pivots with an insertion-sort base case.  Write sets
   are small (tens of entries), so the base case does most of the
   work. *)
let sort_prefix (a : int array) ~len =
  let rec qsort lo hi =
    if hi - lo < 16 then
      for i = lo + 1 to hi do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      let mid = (lo + hi) / 2 in
      let swap i j =
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  if len > 1 then qsort 0 (len - 1)
