type record = { ts : int; writes : (int * int64) list }

let encode ~ts writes =
  let n = List.length writes in
  let arr = Array.make (2 + (2 * n)) 0L in
  arr.(0) <- Int64.of_int ts;
  arr.(1) <- Int64.of_int n;
  List.iteri
    (fun i (addr, v) ->
      arr.(2 + (2 * i)) <- Int64.of_int addr;
      arr.(3 + (2 * i)) <- v)
    writes;
  arr

let decode arr =
  if Array.length arr < 2 then None
  else
    let ts = Int64.to_int arr.(0) in
    let n = Int64.to_int arr.(1) in
    if n < 0 || Array.length arr <> 2 + (2 * n) || ts <= 0 then None
    else
      Some
        {
          ts;
          writes =
            List.init n (fun i ->
                (Int64.to_int arr.(2 + (2 * i)), arr.(3 + (2 * i))));
        }

let span_words ~nwrites = Pmlog.Bitstream.stored_words_for (2 + (2 * nwrites))
let encoded_words ~nwrites = 2 + (2 * nwrites)

(* Allocation-free encode for the commit path: the caller owns a
   reusable buffer of at least [encoded_words ~nwrites] words, writes
   the header with this, then lays each (addr, value) pair out at
   offsets [2 + 2i] / [3 + 2i] — the same layout [encode] produces and
   [decode] parses. *)
let encode_header buf ~ts ~nwrites =
  buf.(0) <- Int64.of_int ts;
  buf.(1) <- Int64.of_int nwrites

(* The same layout staged as raw little-endian bytes (word [i] at byte
   [8i]), for {!Pmlog.Rawl.append_bytes}: header here, each (addr,
   value) pair at bytes [8 * (2 + 2i)] / [8 * (3 + 2i)]. *)
let encode_header_bytes buf ~ts ~nwrites =
  Bytes.set_int64_le buf 0 (Int64.of_int ts);
  Bytes.set_int64_le buf 8 (Int64.of_int nwrites)
