type commit_record = {
  tid : int;
  cts : int;
  read_only : bool;
  reads : (int * int64) array;
  writes : (int * int64) array;
}

type event = Commit of commit_record | Abort of { tid : int; attempt : int }

type t = { mutable rev_events : event list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let add t e =
  t.rev_events <- e :: t.rev_events;
  t.n <- t.n + 1

let length t = t.n
let events t = List.rev t.rev_events

let commits t =
  List.filter_map
    (function Commit c -> Some c | Abort _ -> None)
    (events t)

let aborts t =
  List.length
    (List.filter (function Abort _ -> true | Commit _ -> false) t.rev_events)

(* The serial oracle.  Writers carry unique commit timestamps (drawn
   from the global {!Timestamp} one at a time, or from disjoint
   per-thread leases — uniqueness holds either way), and recovery
   replays redo records in cts order — so cts order *is* the system's
   serialization contract.  Leased timestamps can leave the counter in
   non-arrival order, which is exactly why this check matters there:
   the lock-table reader watermarks must force every writer above the
   readers it would otherwise invalidate, and any failure of that
   protocol shows up here as a read that the cts-order replay cannot
   reproduce.  Read-only transactions never take a
   timestamp; their reads were validated against [rv], so they order
   directly after the writer whose cts equals their recorded [rv].
   Replaying the history in that order against a model memory must
   reproduce every recorded read and the final memory image; any
   divergence is a caught race. *)
let check t ~initial ~final =
  let commits = commits t in
  let indexed = List.mapi (fun i c -> (i, c)) commits in
  let ordered =
    List.stable_sort
      (fun (i, a) (j, b) ->
        match compare a.cts b.cts with
        | 0 -> (
            (* writers (read_only = false) before readers at the same
               timestamp: the reader validated against that version *)
            match compare a.read_only b.read_only with
            | 0 -> compare i j
            | c -> c)
        | c -> c)
      indexed
  in
  let violations = ref [] in
  let viol fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* cts uniqueness among writers *)
  let seen_cts = Hashtbl.create 64 in
  List.iter
    (fun (i, c) ->
      if not c.read_only then begin
        (match Hashtbl.find_opt seen_cts c.cts with
        | Some j ->
            viol "txn #%d (tid %d) and txn #%d share commit timestamp %d" i
              c.tid j c.cts
        | None -> ());
        Hashtbl.replace seen_cts c.cts i
      end)
    indexed;
  let model = Hashtbl.create 256 in
  let model_read addr =
    match Hashtbl.find_opt model addr with
    | Some v -> v
    | None -> initial addr
  in
  List.iter
    (fun (i, c) ->
      Array.iter
        (fun (addr, v) ->
          let expect = model_read addr in
          if v <> expect then
            viol
              "txn #%d (tid %d, %s %d) read [0x%x] = %Ld; the serial replay \
               in commit-timestamp order requires %Ld"
              i c.tid
              (if c.read_only then "ro, rv" else "cts")
              c.cts addr v expect)
        c.reads;
      Array.iter (fun (addr, v) -> Hashtbl.replace model addr v) c.writes)
    ordered;
  (* The final memory image must equal the serial replay of the write
     sets — the same invariant crash recovery relies on. *)
  let touched =
    List.sort_uniq compare
      (Hashtbl.fold (fun addr _ acc -> addr :: acc) model [])
  in
  List.iter
    (fun addr ->
      let want = Hashtbl.find model addr in
      let got = final addr in
      if got <> want then
        viol "final memory [0x%x] = %Ld; the serial replay gives %Ld" addr
          got want)
    touched;
  List.rev !violations
