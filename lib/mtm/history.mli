(** Transaction histories and the conflict-serializability oracle.

    When a history hook is installed on a pool
    ({!Txn.set_history_hook}), every transaction outcome is reported as
    an {!event}: commits carry the transaction's first-read values, its
    write set, and its commit timestamp; aborts carry the attempt
    number.  {!check} validates a collected history against a serial
    oracle — replaying the committed transactions in commit-timestamp
    order against a model memory and demanding that every recorded read
    and the final memory image match the replay.  Any divergence means
    two transactions overlapped in a non-serializable way: a race.

    The oracle's order is not arbitrary: recovery replays redo records
    in commit-timestamp order (see {!Txn.create_pool}), so cts-order
    view consistency is exactly the contract a crash already depends
    on. *)

type commit_record = {
  tid : int;  (** Thread slot. *)
  cts : int;  (** Commit timestamp; for read-only transactions, [rv]. *)
  read_only : bool;
  reads : (int * int64) array;
      (** (address, value) of every memory read, in program order.
          Reads satisfied from the transaction's own write set are
          internal and not recorded. *)
  writes : (int * int64) array;  (** (address, new value). *)
}

type event = Commit of commit_record | Abort of { tid : int; attempt : int }

type t
(** A collected history (arrival order). *)

val create : unit -> t
val add : t -> event -> unit

val length : t -> int
val events : t -> event list
(** In arrival order. *)

val commits : t -> commit_record list
val aborts : t -> int

val check :
  t -> initial:(int -> int64) -> final:(int -> int64) -> string list
(** [check t ~initial ~final] replays the committed transactions in
    (cts, writers-first, arrival) order against a model memory whose
    untouched cells read as [initial addr], checking every recorded
    read against the model and finally the model against [final addr].
    Returns human-readable violation descriptions; [[]] means the
    history is consistent with its commit-timestamp serialization. *)
