(** TinySTM's global timestamp counter (paper section 5).

    Incremented at every transaction completion; the value is stored in
    the redo log with each transaction so recovery can replay
    transactions from different threads' logs in execution order.

    The counter is a single shared cache line, so bumping it costs more
    as more threads hammer it — the paper observes "the slight increase
    in write latency is due to contention on the global timestamp
    counter".  We charge [timestamp_ns x active threads] per
    shared-line transaction to model that coherence traffic.

    At high thread counts the shared bump is a serialization point;
    {!draw} amortizes it by leasing each thread a block of consecutive
    timestamps and touching the shared line only on refill. *)

type t

type lease
(** A thread-private block of consecutive commit timestamps. *)

val max_cts : int
(** The largest representable commit timestamp: [2^62 - 1].  Redo-record
    headers carry the cts in 62 usable bits (the torn-bit log steals
    one bit, the OCaml int sign another); crossing this ceiling would
    silently wrap and reorder recovery replay. *)

exception Exhausted
(** Raised by {!next}, {!draw} and {!advance_to} instead of wrapping
    past {!max_cts}. *)

val create : unit -> t

val now : t -> int
(** Current value without bumping (transaction read-version snapshot).
    An upper bound on every commit timestamp issued so far, leased
    blocks included. *)

val next : t -> Scm.Env.t -> int
(** Bump and return the new value, charging the contention-scaled
    cost to the calling thread.  @raise Exhausted at the ceiling. *)

val lease_create : unit -> lease
(** A fresh, empty lease: the first {!draw} through it refills. *)

val lease_remaining : lease -> int
(** Unissued values left in the lease (before any floor skipping). *)

val draw : t -> Scm.Env.t -> lease -> size:int -> floor:int -> int
(** Draw one commit timestamp strictly greater than [floor] (the
    largest version or read timestamp the commit must serialize
    after).  [size <= 1] degenerates to {!next} — the exact legacy
    path.  Otherwise the value comes from the lease when possible
    (thread-local, no simulated cost, no yield); when the lease is
    exhausted — or none of its remaining values exceeds [floor] — a
    block of [size] fresh values is leased from the shared counter,
    charging one contention-scaled shared-line transaction.  Distinct
    leases are disjoint, so issued values are globally unique.
    @raise Exhausted at the ceiling. *)

val advance_to : t -> int -> unit
(** Raise the counter to at least the given value without issuing any
    timestamps: recovery advances past the largest replayed cts in
    O(1).  Charges no simulated time.  @raise Exhausted at the
    ceiling. *)

val register_thread : t -> unit
val unregister_thread : t -> unit
val active_threads : t -> int

val set_race : t -> Race_api.hooks option -> unit
(** Race-detection hooks (DESIGN.md section 18): the shared counter is
    a single atomic word; bumps, lease refills and {!advance_to} are
    rmw edges on it.  [None] (the default) keeps every site a single
    never-taken branch. *)
