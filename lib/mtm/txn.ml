module Pmem = Region.Pmem

type truncation = Sync | Async
type version_mgmt = Lazy_redo | Eager_undo

(* Conflict-management policy.  [Cm_legacy] is the historical behaviour
   (abort on any foreign owner, linear randomized backoff),
   bit-identical to before the knob existed.  [Cm_adaptive] adds
   timestamp-priority waiting (wait-die: an older transaction waits a
   bounded time for a younger lock owner; a younger one aborts at once,
   so wait chains run strictly old-to-young and cannot cycle) and
   capped exponential backoff scaled by how contended the aborting
   line has been. *)
type cm = Cm_legacy | Cm_adaptive

type config = {
  nthreads : int;
  log_cap_words : int;
  truncation : truncation;
  version_mgmt : version_mgmt;
  lock_bits : int;
  max_attempts : int;
  (* Scalable-commit knobs.  The defaults (lease 1, one stripe, no
     group commit) reproduce the original shared-point protocol
     bit-identically: sim figures, crash-point indices and recorded
     schedules are all pinned against them. *)
  ts_lease : int;  (* cts values leased per shared-counter refill *)
  lock_stripes : int;  (* lock-table stripes (power of two) *)
  group_commit : bool;  (* share one log-flush fence per drain window *)
  gc_window_ns : int;  (* leader lingers this long gathering companions *)
  gc_trunc_batch : int;  (* sync truncations retired per batch *)
  (* Pipelined-commit knobs.  Off by default: with [pipeline = false]
     the path below the durability point is the scalable protocol,
     bit-identical. *)
  pipeline : bool;
      (* release write locks right after the durability fence and hand
         data-line flushing + log truncation to a drainer *)
  pipe_window : int;  (* commits in flight awaiting write-back, per thread *)
  cm : cm;
  cm_wait_ns : int;  (* adaptive: bounded wait on a younger lock owner *)
  cm_backoff_cap_ns : int;  (* adaptive: retry-backoff ceiling *)
}

let default_config =
  {
    nthreads = 4;
    log_cap_words = 65536;
    truncation = Sync;
    version_mgmt = Lazy_redo;
    lock_bits = 18;
    max_attempts = 64;
    ts_lease = 1;
    lock_stripes = 1;
    group_commit = false;
    gc_window_ns = 0;
    gc_trunc_batch = 8;
    pipeline = false;
    pipe_window = 8;
    cm = Cm_legacy;
    cm_wait_ns = 800;
    cm_backoff_cap_ns = 12800;
  }

exception Contention
exception Cancelled
exception Abort_internal

(* A commit whose log span is awaiting asynchronous truncation; the
   daemon only needs the record's span and its write addresses (sorted
   ascending) to flush lines and advance the head.  The owning
   transaction id rides along so the deferred work can close the
   commit's causal flow in the trace. *)
type pending = { span : int; addrs : int array; txid : int }

type pool = {
  pmem : Region.Pmem.t;
  heap : Pmheap.Heap.t option;
  locks : Lock_table.t;
  ts : Timestamp.t;
  cfg : config;
  log_bases : int array;
  mutable logs : Pmlog.Rawl.t array;
      (* recovery-time handles, for inspection *)
  obs : Obs.t;
  (* per-phase commit-latency breakdown (paper table 5's spirit) *)
  h_total : Obs.Metrics.histogram;
  h_log_write : Obs.Metrics.histogram;
  h_fence : Obs.Metrics.histogram;
  h_write_back : Obs.Metrics.histogram;
  h_stm : Obs.Metrics.histogram;
  h_gc_group : Obs.Metrics.histogram;  (* group-commit members per fence *)
  fc_aliased : Obs.Metrics.counter;
      (* aborts where the conflicting owner held the lock for a
         different address: lock-table aliasing, not a data conflict *)
  mutable recovered : int;
  mutable commits : int;
  mutable aborts : int;
  mutable ro_commits : int;
  mutable retries : int;
  mutable contention_failures : int;
  mutable log_full_stalls : int;
  (* Exploration hooks, both [None] by default so the hot paths cost
     one branch and the default schedule stays bit-identical. *)
  mutable history : (History.event -> unit) option;
  mutable backoff_draw : (int -> int) option;
  (* Per-transaction profile ledger, [None] by default under the same
     one-branch discipline as the exploration hooks. *)
  mutable txprof : Obs.Txprof.t option;
  mutable next_txid : int;
      (* pool-wide transaction id source; ids stamp causal flows and
         profile entries, 0 meaning "no transaction" *)
  (* Group-commit rendezvous: members whose records await the shared
     fence, and whether a leader is currently draining a window. *)
  mutable gc_waiters : thread list;
  mutable gc_leading : bool;
  (* Pipelined commit: every bound thread, for the drainer's sweep, and
     the hook that wakes a drainer daemon when work is queued.  The
     hook receives the committing thread's id so a sharded deployment
     (one daemon per group of threads, see {!drain_pipeline}'s [shard])
     wakes only the daemon responsible for that thread. *)
  mutable threads : thread list;
  mutable drain_wake : (int -> unit) option;
  (* Contention manager: the priority stamp each thread slot publishes
     while a transaction runs there (its txid; [max_int] when idle —
     stable across retries, so a long-retrying transaction ages into
     higher priority), per-line abort attribution, and accumulated
     backoff/wait time for the benchmark breakdowns. *)
  cm_stamps : int array;
  abort_lines : (int, int ref) Hashtbl.t;
  mutable backoff_ns : int;
  mutable cm_waits : int;
  (* Race-detection hooks (DESIGN.md section 18), [None] by default
     under the same one-branch discipline as the exploration hooks.
     {!set_race} forwards them to the lock table, the timestamp
     counter and every thread log, so the whole coordination surface
     reports to one detector. *)
  mutable race : Race_api.hooks option;
}

and thread = {
  id : int;
  pool : pool;
  view : Pmem.view;
  log : Pmlog.Rawl.t;
  pending_q : pending Queue.t;
  rng : Random.State.t;
  lease : Timestamp.lease;  (* thread-private block of cts values *)
  mutable gc_done : bool;  (* this thread's record fenced by a leader *)
  mutable current : txn option;
  (* Reusable per-thread transaction state: one transaction runs at a
     time per thread (flat nesting), so every attempt recycles these
     tables and scratch buffers instead of allocating.  The steady-state
     commit path touches only preallocated arrays. *)
  t_wset : Wset.t;  (* redo: buffered new values *)
  t_old_vals : Wset.t;  (* undo: first-write old values, insert order *)
  mutable wlocks : int array;  (* acquired lock indices *)
  mutable nwlocks : int;
  mutable rset_idx : int array;  (* read-set lock indices... *)
  mutable rset_ver : int array;  (* ...and the versions read *)
  mutable nrset : int;
  mutable sorted : int array;  (* scratch: write addresses, sorted *)
  mutable enc_buf : Bytes.t;  (* scratch: redo-record encoding, raw LE bytes *)
  undo_buf : int64 array;  (* scratch: one [addr, old] undo record *)
  (* first-read (addr, value) capture, only filled when the pool has a
     history hook *)
  mutable r_addrs : int array;
  mutable r_vals : int64 array;
  mutable nreads : int;
  mutable cur_txid : int;  (* id of the transaction running here, 0 = none *)
  mutable draining : bool;
      (* the drainer popped this queue and has not yet advanced the
         head: inline drains must wait instead of double-retiring *)
  mutable race_pushes : int;
      (* detector bookkeeping: descriptors pushed/popped through
         [pending_q], numbering the per-item plain-access labels so
         each delivered descriptor is its own checked location *)
  mutable race_pops : int;
  mutable last_conflict_addr : int;
      (* address whose lock conflict caused the latest abort, for the
         adaptive backoff's per-line contention scaling *)
  (* Per-transaction profile scratch, only maintained when the pool has
     a {!Obs.Txprof} ledger installed.  [prof_mark] is a running
     timestamp: each phase boundary attributes [now - prof_mark] to one
     phase and advances the mark, so the phases partition the
     transaction's interval exactly. *)
  prof_phases : int array;
  mutable prof_start : int;
  mutable prof_mark : int;
  mutable prof_stall_ns : int;  (* log-full stall inside the current append *)
  mutable prof_retries : int;
  mutable prof_bytes : int;
}

and txn = {
  th : thread;
  mutable rv : int;
  wset : Wset.t;  (* == th.t_wset, cleared by fresh_txn *)
  old_vals : Wset.t;  (* == th.t_old_vals *)
  mutable resvs : Pmheap.Hoard.reservation list;
  mutable freed_small : int list;
  mutable large_allocs : int list;
  mutable large_frees : int list;
}

type t = txn

type stats = {
  commits : int;
  aborts : int;
  read_only_commits : int;
  retries : int;
  contention_failures : int;
  log_full_stalls : int;
}

let config pool = pool.cfg
let pmem pool = pool.pmem
let recovered_txns pool = pool.recovered
let obs pool = pool.obs

let stats (pool : pool) =
  { commits = pool.commits; aborts = pool.aborts;
    read_only_commits = pool.ro_commits; retries = pool.retries;
    contention_failures = pool.contention_failures;
    log_full_stalls = pool.log_full_stalls }

let reset_stats (pool : pool) =
  pool.commits <- 0;
  pool.aborts <- 0;
  pool.ro_commits <- 0;
  pool.retries <- 0;
  pool.contention_failures <- 0;
  pool.log_full_stalls <- 0;
  pool.backoff_ns <- 0;
  pool.cm_waits <- 0;
  Hashtbl.reset pool.abort_lines

let backoff_ns (pool : pool) = pool.backoff_ns
let cm_waits (pool : pool) = pool.cm_waits

(* Per-line abort attribution, hottest line first: which addresses the
   contention manager is actually fighting over. *)
let abort_attribution (pool : pool) =
  Hashtbl.fold (fun line r acc -> (line, !r) :: acc) pool.abort_lines []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let set_drain_wake pool w = pool.drain_wake <- w

type log_usage = { slot : int; base : int; cap_words : int; used : int }

(* Occupancy as of the recovery-time attach (thread-local handles made
   by {!thread} advance independently); regionctl reads this right
   after opening an instance, where it is exact. *)
let log_usage pool =
  Array.to_list
    (Array.mapi
       (fun i log ->
         { slot = i; base = pool.log_bases.(i);
           cap_words = Pmlog.Rawl.capacity log;
           used = Pmlog.Rawl.used_words log })
       pool.logs)

(* ------------------------------------------------------------------ *)
(* Pool creation and recovery                                          *)

let log_region_bytes cfg =
  Pmlog.Rawl.region_bytes_for ~cap_words:cfg.log_cap_words

let log_base_of v cfg i =
  let slot = Region.Pstatic.get v (Printf.sprintf "mtm.log.%02d" i) 8 in
  let recorded = Int64.to_int (Pmem.load v slot) in
  let valid =
    recorded <> 0
    && Region.Pmem.region_containing v.Pmem.pmem recorded <> None
  in
  if valid then recorded
  else begin
    let base = Pmem.pmap v (log_region_bytes cfg) in
    ignore (Pmlog.Rawl.create v ~base ~cap_words:cfg.log_cap_words);
    Pmem.wtstore v slot (Int64.of_int base);
    Pmem.fence v;
    base
  end

let create_pool ?(config = default_config) pmem heap =
  if config.version_mgmt = Eager_undo && config.truncation = Async then
    invalid_arg
      "Txn.create_pool: undo logging commits by truncation and cannot be \
       asynchronous";
  if config.version_mgmt = Eager_undo && config.group_commit then
    invalid_arg
      "Txn.create_pool: group commit amortizes the redo-log flush and \
       requires redo logging";
  if config.ts_lease < 1 then invalid_arg "Txn.create_pool: ts_lease < 1";
  if config.pipeline && config.version_mgmt = Eager_undo then
    invalid_arg
      "Txn.create_pool: the pipelined commit defers data write-back \
       behind a durable redo record and requires redo logging";
  if config.pipeline && config.pipe_window < 1 then
    invalid_arg "Txn.create_pool: pipe_window < 1";
  let v = Pmem.default_view pmem in
  let obs = v.Pmem.env.Scm.Env.machine.Scm.Env.obs in
  let m = obs.Obs.metrics in
  let pool =
    {
      pmem;
      heap;
      locks =
        Lock_table.create ~bits:config.lock_bits ~stripes:config.lock_stripes
          ();
      ts = Timestamp.create ();
      cfg = config;
      log_bases = Array.make config.nthreads 0;
      logs = [||];
      obs;
      h_total = Obs.Metrics.histogram m "mtm.commit.total_ns";
      h_log_write = Obs.Metrics.histogram m "mtm.commit.log_write_ns";
      h_fence = Obs.Metrics.histogram m "mtm.commit.fence_ns";
      h_write_back = Obs.Metrics.histogram m "mtm.commit.write_back_ns";
      h_stm = Obs.Metrics.histogram m "mtm.commit.stm_ns";
      h_gc_group = Obs.Metrics.histogram m "mtm.gc.group_size";
      fc_aliased = Obs.Metrics.counter m "mtm.lock.false_conflicts";
      recovered = 0;
      commits = 0;
      aborts = 0;
      ro_commits = 0;
      retries = 0;
      contention_failures = 0;
      log_full_stalls = 0;
      history = None;
      backoff_draw = None;
      txprof = None;
      next_txid = 0;
      gc_waiters = [];
      gc_leading = false;
      threads = [];
      drain_wake = None;
      cm_stamps = Array.make config.nthreads max_int;
      abort_lines = Hashtbl.create 64;
      backoff_ns = 0;
      cm_waits = 0;
      race = None;
    }
  in
  (* Recovery: gather complete records from every thread log, replay in
     global-timestamp order, then truncate.  Replay is idempotent redo,
     so a crash during recovery just redoes it. *)
  let logs_and_records =
    Array.to_list
      (Array.init config.nthreads (fun i ->
           let base = log_base_of v config i in
           pool.log_bases.(i) <- base;
           Pmlog.Rawl.attach v ~base))
  in
  pool.logs <- Array.of_list (List.map fst logs_and_records);
  (match config.version_mgmt with
  | Lazy_redo ->
      (* Redo: every surviving record is a committed transaction; replay
         all of them in global-timestamp order. *)
      let records =
        List.concat_map (fun (_, records) -> records) logs_and_records
        |> List.filter_map Redo_log.decode
        |> List.sort (fun a b -> compare a.Redo_log.ts b.Redo_log.ts)
      in
      List.iter
        (fun { Redo_log.ts; writes } ->
          Obs.instant_at obs Obs.Trace.Recovery_replay
            ~ts:(v.Pmem.env.Scm.Env.now ()) ~arg:ts;
          List.iter (fun (addr, value) -> Pmem.wtstore v addr value) writes)
        records;
      if records <> [] then begin
        Pmem.fence v;
        pool.recovered <- List.length records;
        (* New transactions must commit with later timestamps than
           anything a leftover log record could carry. *)
        let max_ts =
          List.fold_left (fun acc r -> max acc r.Redo_log.ts) 0 records
        in
        (* Same simulated cost as the historical bump-per-value loop
           (recovery is single-threaded, so each bump cost exactly one
           [timestamp_ns]), without O(max_ts) counter transactions. *)
        v.Pmem.env.delay (v.Pmem.env.machine.latency.timestamp_ns * max_ts);
        Timestamp.advance_to pool.ts max_ts
      end
  | Eager_undo ->
      (* Undo: each log holds the [addr, old] records of at most one
         in-flight (uncommitted) transaction; roll it back by restoring
         old values in reverse order. *)
      List.iter
        (fun (_, records) ->
          let undo_entries =
            List.filter_map
              (fun r ->
                if Array.length r = 2 then
                  Some (Int64.to_int r.(0), r.(1))
                else None)
              records
          in
          if undo_entries <> [] then begin
            Obs.instant_at obs Obs.Trace.Recovery_replay
              ~ts:(v.Pmem.env.Scm.Env.now ())
              ~arg:(List.length undo_entries);
            List.iter
              (fun (addr, old) -> Pmem.wtstore v addr old)
              (List.rev undo_entries);
            Pmem.fence v;
            pool.recovered <- pool.recovered + 1
          end)
        logs_and_records);
  List.iter (fun (log, _) -> Pmlog.Rawl.truncate_all log) logs_and_records;
  pool

let thread pool i env =
  if i < 0 || i >= pool.cfg.nthreads then invalid_arg "Txn.thread: slot";
  let view = Pmem.view pool.pmem env in
  let log, records = Pmlog.Rawl.attach view ~base:pool.log_bases.(i) in
  (* A previous handle on this slot (e.g. the instance's main thread)
     may have gone away with truncations still deferred: its committed
     records survive in the shared log and the lines they cover may
     still be cache-dirty.  Retire them now — flush every covered line,
     fence, truncate — so this handle's own head advances stay aligned
     with the records it appends itself.  Configurations that truncate
     at commit leave the log empty, making this free. *)
  (match pool.cfg.version_mgmt with
  | Lazy_redo when records <> [] ->
      let last = ref (-1) in
      List.iter
        (fun r ->
          match Redo_log.decode r with
          | None -> ()
          | Some { Redo_log.writes; _ } ->
              List.iter
                (fun (addr, _) ->
                  let line = addr land lnot 63 in
                  if line <> !last then begin
                    Pmem.flush view line;
                    last := line
                  end)
                writes)
        records;
      Pmem.fence view;
      Pmlog.Rawl.truncate_all log
  | _ -> ());
  Timestamp.register_thread pool.ts;
  let th =
  {
    id = i;
    pool;
    view;
    log;
    pending_q = Queue.create ();
    rng = Random.State.make [| 0x7a11; i |];
    lease = Timestamp.lease_create ();
    gc_done = false;
    current = None;
    t_wset = Wset.create ();
    t_old_vals = Wset.create ();
    wlocks = Array.make 64 0;
    nwlocks = 0;
    rset_idx = Array.make 64 0;
    rset_ver = Array.make 64 0;
    nrset = 0;
    sorted = Array.make 64 0;
    enc_buf = Bytes.create (160 * 8);
    undo_buf = Array.make 2 0L;
    r_addrs = Array.make 8 0;
    r_vals = Array.make 8 0L;
    nreads = 0;
    cur_txid = 0;
    draining = false;
    race_pushes = 0;
    race_pops = 0;
    last_conflict_addr = 0;
    prof_phases = Array.make Obs.Txprof.nphases 0;
    prof_start = 0;
    prof_mark = 0;
    prof_stall_ns = 0;
    prof_retries = 0;
    prof_bytes = 0;
  }
  in
  pool.threads <- th :: pool.threads;
  (* a detector installed before this thread was bound covers its log *)
  (match pool.race with
  | None -> ()
  | Some _ as h -> Pmlog.Rawl.set_race th.log h);
  th

let set_history_hook pool h = pool.history <- h
let set_backoff_draw pool d = pool.backoff_draw <- d
let set_txprof pool tp = pool.txprof <- tp
let txprof pool = pool.txprof

let set_race pool h =
  pool.race <- h;
  Lock_table.set_race pool.locks h;
  Timestamp.set_race pool.ts h;
  Array.iter (fun l -> Pmlog.Rawl.set_race l h) pool.logs;
  List.iter (fun th -> Pmlog.Rawl.set_race th.log h) pool.threads

(* ---------------------------------------------------------------- *)
(* Race-detector annotations (DESIGN.md section 18).

   Classification: [pending_q] is an mpsc channel (push = release,
   pop = acquire) and every descriptor delivered through it is its own
   plain checked location — the channel edge is exactly what makes the
   descriptor handoff race-free, so a broken wake/drain protocol shows
   up as a read/write race on the descriptor.  [draining], [gc_done],
   [gc_leading] and the waiter list are single-word flags
   (test-and-set = rmw, clear = release, poll = acquire); [cm_stamps]
   slots are publish/observe words (release/acquire); [abort_lines]
   and [next_txid] are shared rmw words.  Each helper is one branch
   when no detector is installed; label strings are only built when
   one is. *)

let[@inline] race_q_push th =
  match th.pool.race with
  | None -> ()
  | Some h ->
      let k = th.race_pushes in
      th.race_pushes <- k + 1;
      h.Race_api.write (Printf.sprintf "mtm.th.%d.pending.%d" th.id k);
      h.Race_api.release ("mtm.th." ^ string_of_int th.id ^ ".pending_q")

let[@inline] race_q_pop th =
  match th.pool.race with
  | None -> ()
  | Some h ->
      let k = th.race_pops in
      th.race_pops <- k + 1;
      h.Race_api.acquire ("mtm.th." ^ string_of_int th.id ^ ".pending_q");
      h.Race_api.read (Printf.sprintf "mtm.th.%d.pending.%d" th.id k)

let[@inline] race_q_probe th =
  (* Queue.length / Queue.is_empty: reads the channel's state word. *)
  match th.pool.race with
  | None -> ()
  | Some h ->
      h.Race_api.acquire ("mtm.th." ^ string_of_int th.id ^ ".pending_q")

let[@inline] draining_label th = "mtm.th." ^ string_of_int th.id ^ ".draining"

let[@inline] race_draining_set th =
  match th.pool.race with
  | None -> ()
  | Some h -> h.Race_api.rmw (draining_label th)

let[@inline] race_draining_clear th =
  match th.pool.race with
  | None -> ()
  | Some h -> h.Race_api.release (draining_label th)

let[@inline] race_draining_read th =
  match th.pool.race with
  | None -> ()
  | Some h -> h.Race_api.acquire (draining_label th)

let[@inline] gc_done_label th = "mtm.th." ^ string_of_int th.id ^ ".gc_done"
let[@inline] cm_stamp_label i = "mtm.cm.stamp." ^ string_of_int i

(* Per-id labels must only be built under [Some]: the stamp publish
   sits on every transaction's commit path, so an eager [^] there
   would allocate with the detector off. *)
let[@inline] race_rel_stamp pool i =
  match pool.race with
  | None -> ()
  | Some h -> h.Race_api.release (cm_stamp_label i)

let[@inline] race_acq_stamp pool i =
  match pool.race with
  | None -> ()
  | Some h -> h.Race_api.acquire (cm_stamp_label i)

let[@inline] race_rel_gc_done pool th =
  match pool.race with
  | None -> ()
  | Some h -> h.Race_api.release (gc_done_label th)

let[@inline] race_acq_gc_done pool th =
  match pool.race with
  | None -> ()
  | Some h -> h.Race_api.acquire (gc_done_label th)

let[@inline] race_rmw_gc_done pool th =
  match pool.race with
  | None -> ()
  | Some h -> h.Race_api.rmw (gc_done_label th)

let[@inline] race_rmw pool label =
  match pool.race with None -> () | Some h -> h.Race_api.rmw label

let[@inline] race_acq pool label =
  match pool.race with None -> () | Some h -> h.Race_api.acquire label

let[@inline] race_rel_label pool label =
  match pool.race with None -> () | Some h -> h.Race_api.release label

(* Attribute everything since the last mark to [phase] and advance the
   mark.  Only called when the pool has a ledger; reads the clock but
   never charges simulated time. *)
let[@inline] prof_phase th phase =
  let now = th.view.Pmem.env.Scm.Env.now () in
  th.prof_phases.(phase) <- th.prof_phases.(phase) + (now - th.prof_mark);
  th.prof_mark <- now

(* ------------------------------------------------------------------ *)
(* Scratch-buffer management (amortized: grow once, reuse forever)     *)

let push_wlock th idx =
  if th.nwlocks = Array.length th.wlocks then
    th.wlocks <- Array.append th.wlocks (Array.make (Array.length th.wlocks) 0);
  th.wlocks.(th.nwlocks) <- idx;
  th.nwlocks <- th.nwlocks + 1

let push_read th idx ver =
  if th.nrset = Array.length th.rset_idx then begin
    let n = Array.length th.rset_idx in
    th.rset_idx <- Array.append th.rset_idx (Array.make n 0);
    th.rset_ver <- Array.append th.rset_ver (Array.make n 0)
  end;
  th.rset_idx.(th.nrset) <- idx;
  th.rset_ver.(th.nrset) <- ver;
  th.nrset <- th.nrset + 1

(* First-read (addr, value) capture for the serializability oracle;
   only called when the pool has a history hook, so growth here never
   charges the default hot path. *)
let record_read th addr v =
  if th.nreads = Array.length th.r_addrs then begin
    let n = Array.length th.r_addrs in
    th.r_addrs <- Array.append th.r_addrs (Array.make n 0);
    th.r_vals <- Array.append th.r_vals (Array.make n 0L)
  end;
  th.r_addrs.(th.nreads) <- addr;
  th.r_vals.(th.nreads) <- v;
  th.nreads <- th.nreads + 1

let ensure_sorted th n =
  if Array.length th.sorted < n then th.sorted <- Array.make (2 * n) 0;
  th.sorted

let ensure_enc th n =
  if Bytes.length th.enc_buf < 8 * n then th.enc_buf <- Bytes.create (16 * n);
  th.enc_buf

(* Write addresses of [ws], sorted ascending, in [th.sorted]; returns
   the count. *)
let sorted_addrs_of th ws =
  let n = Wset.blit_keys ws (ensure_sorted th (Wset.size ws)) in
  Wset.sort_prefix th.sorted ~len:n;
  n

(* ------------------------------------------------------------------ *)
(* Transactional accesses                                              *)

let latency (tx : txn) = tx.th.view.Pmem.env.machine.latency
let delay (tx : txn) ns = tx.th.view.Pmem.env.delay ns

let validate tx =
  let th = tx.th in
  let locks = th.pool.locks in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < th.nrset do
    let idx = th.rset_idx.(!i) in
    (if Lock_table.version locks idx <> th.rset_ver.(!i) then ok := false
     else
       let o = Lock_table.owner locks idx in
       if o <> -1 && o <> th.id then ok := false);
    incr i
  done;
  !ok

let extend tx =
  (* Raising [rv] after revalidation only widens what this transaction
     may read; its serialization point is fixed at commit (and reserved
     on the read locks there), so no watermarks move here. *)
  if validate tx then tx.rv <- Timestamp.now tx.th.pool.ts
  else raise Abort_internal

(* A conflicting owner that acquired the lock for a different address
   never touched our data: the table aliased two addresses onto one
   entry (same 64-byte line, or a table-size wrap).  Counted so the
   striped table's effect is observable. *)
let[@inline] note_false_conflict tx locks idx ~addr =
  if Lock_table.aliased locks idx ~addr then
    Obs.Metrics.incr tx.th.pool.fc_aliased

(* ------------------------------------------------------------------ *)
(* Contention management                                               *)

(* Abort on a lock conflict at [addr]: remember the address (the
   adaptive backoff scales with how contended its line has been) and
   attribute the abort to its 64-byte line.  Plain table ops — no
   simulated time, no rng — so the legacy schedule is untouched. *)
let abort_on_conflict tx addr =
  let th = tx.th in
  race_rmw th.pool "mtm.cm.abort_lines";
  th.last_conflict_addr <- addr;
  let line = addr land lnot 63 in
  (match Hashtbl.find_opt th.pool.abort_lines line with
  | Some r -> incr r
  | None -> Hashtbl.add th.pool.abort_lines line (ref 1));
  raise Abort_internal

let line_abort_count pool addr =
  race_acq pool "mtm.cm.abort_lines";
  match Hashtbl.find_opt pool.abort_lines (addr land lnot 63) with
  | Some r -> !r
  | None -> 0

(* Wait-die: only an older transaction (smaller published stamp) ever
   waits, so wait chains run strictly old-to-young and cannot cycle;
   the bounded budget makes that doubly safe.  Only reachable under
   [Cm_adaptive]. *)
let cm_poll_ns = 80

let[@inline] cm_should_wait th o =
  th.pool.cfg.cm == Cm_adaptive
  && o >= 0
  && o < Array.length th.pool.cm_stamps
  && begin
       race_acq_stamp th.pool th.id;
       race_acq_stamp th.pool o;
       th.pool.cm_stamps.(th.id) < th.pool.cm_stamps.(o)
     end

(* Poll (bounded by [cm_wait_ns]) for the younger owner to release;
   true when the lock changed hands, i.e. the access is worth
   retrying instead of aborting the whole attempt. *)
let cm_wait_for_release th locks idx ~owner =
  let pool = th.pool in
  let env = th.view.Pmem.env in
  pool.cm_waits <- pool.cm_waits + 1;
  let budget = ref pool.cfg.cm_wait_ns in
  let freed = ref false in
  while (not !freed) && !budget > 0 do
    let q = min cm_poll_ns !budget in
    env.Scm.Env.delay q;
    pool.backoff_ns <- pool.backoff_ns + q;
    budget := !budget - q;
    freed := Lock_table.owner locks idx <> owner
  done;
  !freed

let rec load tx addr =
  delay tx (latency tx).stm_access_ns;
  let slot = Wset.find_slot tx.wset addr in
  if slot >= 0 then Wset.value_at tx.wset slot
  else begin
    let locks = tx.th.pool.locks in
    let idx = Lock_table.index_of locks addr in
    let o = Lock_table.owner locks idx in
    if o = tx.th.id then begin
      let value = Pmem.load tx.th.view addr in
      (match tx.th.pool.history with
      | None -> ()
      | Some _ ->
          (* under eager undo an in-place write of ours reads back our
             own value: internal to the transaction, not a history read *)
          if
            not
              (tx.th.pool.cfg.version_mgmt = Eager_undo
              && Wset.mem tx.old_vals addr)
          then record_read tx.th addr value);
      value
    end
    else if o <> -1 then begin
      note_false_conflict tx locks idx ~addr;
      if cm_should_wait tx.th o && cm_wait_for_release tx.th locks idx ~owner:o
      then load tx addr
      else abort_on_conflict tx addr
    end
    else begin
      let v1 = Lock_table.version locks idx in
      let value = Pmem.load tx.th.view addr in
      (* The load yields in the simulator; re-check for a racing
         commit before trusting the value. *)
      if Lock_table.owner locks idx <> -1
         || Lock_table.version locks idx <> v1
      then begin
        if Lock_table.owner locks idx <> -1 then
          note_false_conflict tx locks idx ~addr;
        abort_on_conflict tx addr
      end;
      if v1 > tx.rv then begin
        extend tx;
        (* [extend] validated the read set, but this slot is not in it
           yet: confirm no commit slipped onto this lock while the
           timestamp was re-read, or [value] may be newer than the
           version we are about to record. *)
        if Lock_table.owner locks idx <> -1
           || Lock_table.version locks idx <> v1
        then abort_on_conflict tx addr
      end;
      push_read tx.th idx v1;
      (* No watermark here: the commit that justifies this read — the
         only point whose position later writers must exceed — leaves
         its reservation on the lock inside the same yield-free step as
         its validation.  Stamping [rv] per load instead would leak the
         global-counter snapshot into every later writer's cts floor
         and defeat the timestamp lease. *)
      (match tx.th.pool.history with
      | None -> ()
      | Some _ -> record_read tx.th addr value);
      value
    end
  end

(* Durability-sanitizer hooks: the commit protocol announces write-set
   coverage so the checker can verify the write-ahead rule.  Each site
   is one branch when no sanitizer is installed. *)
let[@inline] pmchk th = th.view.Pmem.env.Scm.Env.machine.Scm.Env.pmcheck
let[@inline] th_log_base th = th.pool.log_bases.(th.id)

(* Stream one undo record ([addr, old value]) and fence: with eager
   version management "undo logging would require ordering a log write
   before every memory update" (paper section 5) — this fence is that
   ordering, and the cost the redo design avoids. *)
let log_undo tx addr old =
  let buf = tx.th.undo_buf in
  buf.(0) <- Int64.of_int addr;
  buf.(1) <- old;
  (match Pmlog.Rawl.append_sub tx.th.log buf ~len:2 with
  | Pmlog.Rawl.Appended _ -> ()
  | Pmlog.Rawl.Full -> failwith "Txn: undo log full (transaction too large)");
  Pmlog.Rawl.flush tx.th.log

let rec store tx addr v =
  delay tx (latency tx).stm_access_ns;
  if not (Region.Layout.is_persistent addr) then
    invalid_arg "Txn.store: address outside the persistent range";
  let locks = tx.th.pool.locks in
  let idx = Lock_table.index_of locks addr in
  let o = Lock_table.owner locks idx in
  if o <> tx.th.id && o <> -1 then begin
    note_false_conflict tx locks idx ~addr;
    if cm_should_wait tx.th o && cm_wait_for_release tx.th locks idx ~owner:o
    then store tx addr v
    else abort_on_conflict tx addr
  end
  else begin
  (if o = -1 then begin
     if Lock_table.version locks idx > tx.rv then extend tx;
     if not (Lock_table.try_acquire locks idx ~owner:tx.th.id ~addr) then
       abort_on_conflict tx addr;
     push_wlock tx.th idx
   end);
  match tx.th.pool.cfg.version_mgmt with
  | Lazy_redo ->
      (match pmchk tx.th with
      | None -> ()
      | Some chk -> Scm.Pmcheck.note_txn_store chk addr);
      Wset.set tx.wset addr v
  | Eager_undo ->
      if not (Wset.mem tx.old_vals addr) then begin
        (* a store's old-value read is transaction bookkeeping, not a
           program read: clear the never-written mark before loading *)
        (match pmchk tx.th with
        | None -> ()
        | Some chk -> Scm.Pmcheck.note_txn_store chk addr);
        let old = Pmem.load tx.th.view addr in
        Wset.set tx.old_vals addr old;
        log_undo tx addr old;
        (match pmchk tx.th with
        | None -> ()
        | Some chk ->
            Scm.Pmcheck.note_covered chk ~log:(th_log_base tx.th) addr)
      end;
      (* eager: the new value goes straight to memory; isolation holds
         because the lock is owned until commit *)
      Pmem.store tx.th.view addr v
  end

let read_bytes tx addr len =
  if addr land 7 <> 0 then invalid_arg "Txn.read_bytes: alignment";
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let w = load tx (addr + !pos) in
    let n = min 8 (len - !pos) in
    Scm.Word.blit_to_bytes w buf !pos n;
    pos := !pos + n
  done;
  buf

let write_bytes tx addr b =
  if addr land 7 <> 0 then invalid_arg "Txn.write_bytes: alignment";
  let len = Bytes.length b in
  let s = Bytes.unsafe_to_string b in
  let pos = ref 0 in
  while !pos < len do
    store tx (addr + !pos) (Scm.Word.of_string_chunk s !pos);
    pos := !pos + 8
  done

(* ------------------------------------------------------------------ *)
(* Transactional allocation                                            *)

let heap_of tx =
  match tx.th.pool.heap with
  | Some h -> h
  | None -> invalid_arg "Txn.alloc: pool has no heap"

let alloc tx size ~slot =
  let heap = heap_of tx in
  if size <= Pmheap.Heap.small_limit then begin
    let resv = Pmheap.Heap.reserve_small ~arena:tx.th.id heap size in
    tx.resvs <- resv :: tx.resvs;
    (match pmchk tx.th with
    | None -> ()
    | Some chk -> Scm.Pmcheck.mark_undef chk resv.addr ~len:size);
    (match resv.header_write with
    | Some (a, v) -> store tx a v
    | None -> ());
    let w = load tx resv.bitmap_addr in
    store tx resv.bitmap_addr (Scm.Word.set_bit w resv.bit true);
    store tx slot (Int64.of_int resv.addr);
    resv.addr
  end
  else begin
    (* Large blocks: allocate immediately through the heap's own log and
       compensate on abort.  A crash between the heap's commit and this
       transaction's commit can leak the block — the price of dlmalloc
       fallback, see DESIGN.md. *)
    let addr = Pmheap.Heap.pmalloc_raw heap size in
    tx.large_allocs <- addr :: tx.large_allocs;
    (match pmchk tx.th with
    | None -> ()
    | Some chk -> Scm.Pmcheck.mark_undef chk addr ~len:size);
    store tx slot (Int64.of_int addr);
    addr
  end

let free_addr tx addr =
  let heap = heap_of tx in
  if addr = 0 then invalid_arg "Txn.free: null address";
  match
    List.partition (fun r -> r.Pmheap.Hoard.addr = addr) tx.resvs
  with
  | [ resv ], rest ->
      (* The block was allocated earlier in this same transaction: undo
         the transactional bit write and return the reservation. *)
      tx.resvs <- rest;
      let w = load tx resv.bitmap_addr in
      store tx resv.bitmap_addr (Scm.Word.set_bit w resv.bit false);
      Pmheap.Heap.cancel_small heap resv
  | _ ->
  if Pmheap.Heap.owns_small heap addr then begin
    let word_addr, bit =
      Pmheap.Heap.free_prepare_small heap ~load:(fun a -> load tx a) addr
    in
    let w = load tx word_addr in
    store tx word_addr (Scm.Word.set_bit w bit false);
    tx.freed_small <- addr :: tx.freed_small
  end
  else tx.large_frees <- addr :: tx.large_frees

let free tx ~slot =
  let addr = Int64.to_int (load tx slot) in
  if addr = 0 then invalid_arg "Txn.free: slot holds no block";
  free_addr tx addr;
  store tx slot 0L

(* ------------------------------------------------------------------ *)
(* Truncation                                                          *)

(* Flush each distinct cache line touched by [addrs.(0 .. n-1)] (which
   must be sorted ascending) exactly once, ascending — duplicates are
   adjacent after the sort, so dedup is one comparison per address
   instead of a [sort_uniq] over freshly consed line lists — then
   fence. *)
let flush_sorted_lines view (addrs : int array) n =
  let last = ref (-1) in
  for i = 0 to n - 1 do
    let line = addrs.(i) land lnot 63 in
    if line <> !last then begin
      Pmem.flush view line;
      last := line
    end
  done;
  Pmem.fence view

let pending_truncations th = Queue.length th.pending_q

(* Volatile occupancy probe for admission control: how full this
   thread's RAWL is right now.  Reads only the DRAM-side cursors, so an
   admission gate can consult it per request without charging SCM
   traffic or taking a yield point. *)
let log_occupancy th =
  (Pmlog.Rawl.used_words th.log, Pmlog.Rawl.capacity th.log)

(* The log manager "consumes the log and forces values out to memory":
   it re-reads the record from SCM (the streamed log words were never
   cached) to learn which addresses to flush.  That read traffic is the
   dominant per-record cost for large transactions and is what makes
   asynchronous truncation lose under low idle time (paper figure 6). *)
let charge_log_read (dview : Pmem.view) ~nwrites =
  let words = 2 + (2 * nwrites) in
  (* sequential scan: prefetching roughly halves the per-word miss *)
  dview.Pmem.env.delay
    (words * dview.Pmem.env.machine.latency.dram_read_ns / 2)

let process_one_truncation th dview =
  race_q_probe th;
  match Queue.take_opt th.pending_q with
  | None -> false
  | Some { span; addrs; txid } ->
      race_q_pop th;
      charge_log_read dview ~nwrites:(Array.length addrs);
      flush_sorted_lines dview addrs (Array.length addrs);
      Pmlog.Rawl.advance_head th.log ~words:span;
      (* the deferred tail of the commit's causal flow: this truncation
         retired transaction [txid]'s record *)
      if txid <> 0 then Obs.flow th.pool.obs ~phase:`End ~id:txid;
      true

let process_truncations th dview =
  let count = ref 0 in
  while process_one_truncation th dview do
    incr count
  done;
  !count

(* Retire every queued truncation as one batch: flush the union of the
   batch's dirty lines (hot lines flushed once, not once per commit),
   then advance the head over all the spans with a single fence.  The
   queued records all sit in the log simultaneously, so the summed span
   is at most the capacity and the advance wraps at most once. *)
let drain_truncations_batched th =
  race_q_probe th;
  if not (Queue.is_empty th.pending_q) then begin
    let total_words = ref 0 and total_addrs = ref 0 in
    Queue.iter
      (fun p ->
        total_words := !total_words + p.span;
        total_addrs := !total_addrs + Array.length p.addrs)
      th.pending_q;
    let nrecords = Queue.length th.pending_q in
    let all = Array.make (max 1 !total_addrs) 0 in
    let off = ref 0 in
    while not (Queue.is_empty th.pending_q) do
      race_q_pop th;
      let { span = _; addrs; txid } = Queue.pop th.pending_q in
      charge_log_read th.view ~nwrites:(Array.length addrs);
      Array.blit addrs 0 all !off (Array.length addrs);
      off := !off + Array.length addrs;
      if txid <> 0 then Obs.flow th.pool.obs ~phase:`End ~id:txid
    done;
    Wset.sort_prefix all ~len:!total_addrs;
    flush_sorted_lines th.view all !total_addrs;
    Pmlog.Rawl.advance_head th.log ~records:nrecords ~words:!total_words
  end

let drain_truncations_blocking th =
  if th.pool.cfg.group_commit then drain_truncations_batched th
  else begin
    race_q_probe th;
    while not (Queue.is_empty th.pending_q) do
      race_q_pop th;
      let { span; addrs; txid } = Queue.pop th.pending_q in
      charge_log_read th.view ~nwrites:(Array.length addrs);
      flush_sorted_lines th.view addrs (Array.length addrs);
      Pmlog.Rawl.advance_head th.log ~words:span;
      if txid <> 0 then Obs.flow th.pool.obs ~phase:`End ~id:txid
    done
  end

(* ------------------------------------------------------------------ *)
(* Pipelined commit: the write-back drainer                            *)

let drain_poll_ns = 60

(* Inline drain of this thread's own queue, mutually excluded against
   the pool drainer: if the drainer already popped the queue (so the
   head has not advanced yet), wait for it rather than double-retiring
   records. *)
let pipe_drain_self th =
  race_draining_read th;
  if th.draining then begin
    let env = th.view.Pmem.env in
    while th.draining do
      env.Scm.Env.delay drain_poll_ns;
      race_draining_read th
    done
  end
  else begin
    race_draining_set th;
    th.draining <- true;
    drain_truncations_batched th;
    race_draining_clear th;
    th.draining <- false
  end

(* The in-flight window: a pipelined commit returns with its data
   write-back still pending; once [pipe_window] commits are pending on
   this thread the producer blocks here until the drainer retires
   some.  Time blocked is the profiler's drain-wait phase.  With no
   daemon installed the producer clears its own window — the pipeline
   degrades to batched inline truncation rather than deadlocking. *)
let pipe_backpressure th =
  let pool = th.pool in
  let window = max 1 pool.cfg.pipe_window in
  race_q_probe th;
  if Queue.length th.pending_q >= window then begin
    (match pool.drain_wake with
    | None -> pipe_drain_self th
    | Some wake ->
        wake th.id;
        let env = th.view.Pmem.env in
        let polls = ref 0 in
        while Queue.length th.pending_q >= window && !polls < 4096 do
          env.Scm.Env.delay drain_poll_ns;
          incr polls;
          race_q_probe th;
          if !polls land 63 = 0 then wake th.id
        done;
        (* daemon starved or gone: clear the window ourselves *)
        race_q_probe th;
        if Queue.length th.pending_q >= window then pipe_drain_self th);
    if pool.txprof != None then prof_phase th Obs.Txprof.ph_drain_wait
  end

(* One sweep of the pool-level drainer: pop every registered thread's
   queued commits in a yield-free snapshot (producers pushing while the
   sweep's memory traffic is charged land in the next round, and inline
   drains see either a full queue or an empty one — never half), charge
   the descriptor reads to the drainer's own fiber, flush the union of
   the batch's data lines (lines hot across threads flushed once) under
   one fence, then advance every log's head with one more combined
   fence ({!Pmlog.Rawl.advance_head_group}).  False when no thread had
   work.  This is the asynchronous stage that lets transaction [n+1]
   run while transaction [n]'s write-back drains.

   Unlike the legacy async truncation daemon — which scans the log and
   pays {!charge_log_read} per record, the paper's figure-6 cost — the
   pipelined commit hands the drainer a volatile work descriptor (the
   write-set addresses, captured at commit time while they were in
   registers), so the drainer touches DRAM once per record and the log
   itself is only ever re-read by recovery.

   [shard = (k, n)] sweeps only threads with [id mod n = k]: one
   drainer fiber serializes every producer's flush traffic through
   itself, so deployments with many threads shard the pool across
   several daemons (the bench uses one per 4 workers) and wake the
   responsible one via the thread id passed to the [drain_wake]
   hook. *)
let drain_pipeline ?shard pool (dview : Pmem.view) =
  let mine th =
    match shard with None -> true | Some (k, n) -> th.id mod n = k
  in
  let batches = ref [] in
  let total_addrs = ref 0 in
  List.iter
    (fun th ->
      if mine th then begin
        race_draining_read th;
        race_q_probe th
      end;
      if mine th && (not th.draining) && not (Queue.is_empty th.pending_q)
      then begin
        race_draining_set th;
        th.draining <- true;
        let records = ref 0 and words = ref 0 in
        let addrs = ref [] and txids = ref [] in
        while not (Queue.is_empty th.pending_q) do
          race_q_pop th;
          let p = Queue.pop th.pending_q in
          incr records;
          words := !words + p.span;
          total_addrs := !total_addrs + Array.length p.addrs;
          addrs := p.addrs :: !addrs;
          if p.txid <> 0 then txids := p.txid :: !txids
        done;
        batches := (th, !records, !words, !addrs, !txids) :: !batches
      end)
    pool.threads;
  match !batches with
  | [] -> false
  | batches ->
      (* one DRAM touch per descriptor (the queue entry; the address
         array rides in the same lines) — not a log re-read *)
      let nrecords =
        List.fold_left (fun acc (_, r, _, _, _) -> acc + r) 0 batches
      in
      dview.Pmem.env.delay
        (nrecords * dview.Pmem.env.machine.latency.dram_read_ns);
      let all = Array.make (max 1 !total_addrs) 0 in
      let off = ref 0 in
      List.iter
        (fun (_, _, _, addr_arrays, _) ->
          List.iter
            (fun a ->
              Array.blit a 0 all !off (Array.length a);
              off := !off + Array.length a)
            addr_arrays)
        batches;
      Wset.sort_prefix all ~len:!total_addrs;
      flush_sorted_lines dview all !total_addrs;
      Pmlog.Rawl.advance_head_group
        (List.map
           (fun (th, records, words, _, _) -> (th.log, records, words))
           batches);
      List.iter
        (fun (th, _, _, _, txids) ->
          List.iter (fun txid -> Obs.flow pool.obs ~phase:`End ~id:txid) txids;
          race_draining_clear th;
          th.draining <- false)
        batches;
      true

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)

(* Transactions reaching the durability point in the same drain window
   share one fence.  A retiring member registers itself and either
   leads — performing one combined {!Pmlog.Rawl.flush_group} over every
   member registered by flush time — or parks, polling until a leader
   marks its record durable.  Registration, leader election and the
   waiter takeover are yield-free sections, so exactly one leader
   drains each window; a waiter that wakes to find no active leader
   and its record still pending leads the next window itself (its
   registration is still queued), so nobody is orphaned. *)

let gc_poll_ns = 40

let gc_lead th pool (env : Scm.Env.t) =
  race_rmw pool "mtm.gc.lead";
  pool.gc_leading <- true;
  (* linger to gather companions, unless running alone (the window
     would be pure added latency) *)
  if pool.cfg.gc_window_ns > 0 && Timestamp.active_threads pool.ts > 1 then
    env.delay pool.cfg.gc_window_ns;
  race_rmw pool "mtm.gc.waiters";
  let members = pool.gc_waiters in
  pool.gc_waiters <- [];
  (* the leader's log first: the running thread pays the shared cost *)
  let members = th :: List.filter (fun m -> m != th) members in
  Pmlog.Rawl.flush_group (List.map (fun m -> m.log) members);
  List.iter
    (fun m ->
      race_rel_gc_done pool m;
      m.gc_done <- true)
    members;
  race_rel_label pool "mtm.gc.lead";
  pool.gc_leading <- false;
  Obs.Metrics.record pool.h_gc_group (List.length members)

let rec gc_wait th pool (env : Scm.Env.t) =
  race_acq_gc_done pool th;
  if not th.gc_done then begin
    race_acq pool "mtm.gc.lead";
    if not pool.gc_leading then gc_lead th pool env
    else begin
      env.delay gc_poll_ns;
      gc_wait th pool env
    end
  end

let gc_retire th =
  let pool = th.pool in
  let env = th.view.Pmem.env in
  race_rmw_gc_done pool th;
  th.gc_done <- false;
  race_rmw pool "mtm.gc.waiters";
  pool.gc_waiters <- th :: pool.gc_waiters;
  race_acq pool "mtm.gc.lead";
  if pool.gc_leading then begin
    env.delay gc_poll_ns;
    gc_wait th pool env
  end
  else gc_lead th pool env

(* ------------------------------------------------------------------ *)
(* Commit / abort                                                      *)

let release_locks tx ~committed ~version =
  let th = tx.th in
  let locks = th.pool.locks in
  for i = 0 to th.nwlocks - 1 do
    let idx = th.wlocks.(i) in
    if committed then Lock_table.release_versioned locks idx ~version
    else Lock_table.release locks idx
  done;
  th.nwlocks <- 0

let rollback tx =
  (if tx.th.pool.cfg.version_mgmt = Eager_undo && Wset.size tx.old_vals > 0
   then begin
     (* restore the old values, newest write first, durably, then drop
        the undo records *)
     let n = Wset.size tx.old_vals in
     for i = n - 1 downto 0 do
       let addr = Wset.key tx.old_vals i in
       Pmem.store tx.th.view addr (Wset.get tx.old_vals addr)
     done;
     let ns = sorted_addrs_of tx.th tx.old_vals in
     flush_sorted_lines tx.th.view tx.th.sorted ns;
     Pmlog.Rawl.truncate_all tx.th.log
   end);
  release_locks tx ~committed:false ~version:0;
  (match tx.th.pool.heap with
  | Some heap ->
      List.iter (fun resv -> Pmheap.Heap.cancel_small heap resv) tx.resvs;
      List.iter (fun addr -> Pmheap.Heap.pfree_raw heap addr) tx.large_allocs
  | None -> ());
  (* close any sanitizer coverage the aborted attempt opened (undo
     records, or a redo record staged by a commit that then died) *)
  (match pmchk tx.th with
  | None -> ()
  | Some chk -> Scm.Pmcheck.commit_end chk ~log:(th_log_base tx.th));
  tx.th.pool.aborts <- tx.th.pool.aborts + 1

(* A record that still does not fit after truncation can never fit:
   say how far over the structural limit it is, so the failure points
   at the fix (shrink the transaction or raise [log_cap_words]). *)
let record_capacity_msg tx ~context ~len =
  let log = tx.th.log in
  Printf.sprintf
    "Txn: %s: record of %d words exceeds what a log of %d words can \
     hold (max record: %d words; see Rawl.max_record_words_for)"
    context len
    (Pmlog.Rawl.capacity log)
    (Pmlog.Rawl.max_record_words log)

let append_record tx buf ~len =
  let rec try_append retried =
    match Pmlog.Rawl.append_bytes tx.th.log buf ~len with
    | Pmlog.Rawl.Appended span -> span
    | Pmlog.Rawl.Full ->
        race_q_probe tx.th;
        race_draining_read tx.th;
        if Queue.is_empty tx.th.pending_q && not tx.th.draining then
          failwith
            (record_capacity_msg tx ~context:"transaction record larger \
                                              than the log" ~len)
        else begin
          (* "If the log manager thread is unable to execute, program
             threads may stall until there is free log space." *)
          let pool = tx.th.pool in
          pool.log_full_stalls <- pool.log_full_stalls + 1;
          let env = tx.th.view.Pmem.env in
          let t0 = env.Scm.Env.now () in
          (if pool.cfg.pipeline then begin
             match pool.drain_wake with
             | None -> pipe_drain_self tx.th
             | Some wake ->
                 (* The log can only be full because commits are parked
                    in [pending_q] (checked above) — work that belongs
                    to the shard's drainer daemon.  Historically this
                    path drained inline without waking it, so a stalled
                    producer waited on a *parked* drainer forever while
                    paying the figure-6 inline-drain cost itself.  Wake
                    the owner and wait for it to retire the queue and
                    advance the head (it clears [draining] only after
                    the advance); if it is starved or gone, fall back
                    to the inline drain so the producer never wedges. *)
                 wake tx.th.id;
                 let polls = ref 0 in
                 while
                   ((not (Queue.is_empty tx.th.pending_q))
                   || tx.th.draining)
                   && !polls < 4096
                 do
                   env.Scm.Env.delay drain_poll_ns;
                   incr polls;
                   race_q_probe tx.th;
                   race_draining_read tx.th;
                   if !polls land 63 = 0 then wake tx.th.id
                 done;
                 race_q_probe tx.th;
                 race_draining_read tx.th;
                 if (not (Queue.is_empty tx.th.pending_q)) || tx.th.draining
                 then pipe_drain_self tx.th
           end
           else drain_truncations_blocking tx.th);
          let dur = env.Scm.Env.now () - t0 in
          (* let the profiler split the stall out of the log phase *)
          tx.th.prof_stall_ns <- tx.th.prof_stall_ns + dur;
          Obs.complete pool.obs Obs.Trace.Log_stall ~ts:t0 ~dur
            ~arg:(Queue.length tx.th.pending_q);
          if retried > 1 then
            failwith
              (record_capacity_msg tx
                 ~context:"log full and nothing left to truncate" ~len);
          try_append (retried + 1)
        end
  in
  try_append 0

let finalize_heap_effects tx =
  match tx.th.pool.heap with
  | Some heap ->
      List.iter (fun resv -> Pmheap.Heap.finalize_small heap resv) tx.resvs;
      List.iter (fun addr -> Pmheap.Heap.free_commit_small heap addr)
        tx.freed_small;
      List.iter (fun addr -> Pmheap.Heap.pfree_raw heap addr) tx.large_frees
  | None -> ()

(* The smallest value this commit's timestamp must exceed when
   timestamps are leased: the version of every value read (this commit
   serializes after those writers), plus — for every lock about to
   publish a new version — the version being replaced and the watermark
   of every reader that validated against it.  The write locks are
   held, so both are frozen (a conflicting validator fails on the owner
   check before it could bump).  Deliberately NOT the begin-time
   snapshot [tx.rv]: rv tracks the global counter, which every refill
   inflates by a whole lease, so a floor of rv would invalidate the
   thread's lease on nearly every commit and re-serialize all threads
   on the shared counter.  Only what was actually read and what is
   actually held constrains the serialization order. *)
let cts_floor tx =
  let th = tx.th in
  let locks = th.pool.locks in
  let f = ref 0 in
  for i = 0 to th.nrset - 1 do
    let v = th.rset_ver.(i) in
    if v > !f then f := v
  done;
  for i = 0 to th.nwlocks - 1 do
    let idx = th.wlocks.(i) in
    let v = Lock_table.version locks idx in
    if v > !f then f := v;
    let r = Lock_table.rts locks idx in
    if r > !f then f := r
  done;
  !f

(* Draw the commit timestamp, then re-validate under it.  The draw can
   yield (always, for the shared bump; on lease refill otherwise): a
   transaction that validated in {!commit} can have its read set
   overwritten by a commit slipping into that window, yet still
   serialize *after* it at [cts] — re-validate under the fresh
   timestamp so cts order matches what was read (race found by
   bin/sched_explore; regression traces in test/schedules/).  With
   leased timestamps, additionally bump each read lock's watermark to
   [cts] in the same yield-free step as that validation: any later
   writer of those addresses must draw a larger cts, which is the
   anti-dependency ordering that keeps recovery's cts-sorted replay
   equal to the serialization order. *)
let draw_cts_validated tx =
  let th = tx.th in
  let pool = th.pool in
  let env = th.view.Pmem.env in
  let cts =
    if pool.cfg.ts_lease <= 1 then Timestamp.next pool.ts env
    else
      Timestamp.draw pool.ts env th.lease ~size:pool.cfg.ts_lease
        ~floor:(cts_floor tx)
  in
  if not (validate tx) then raise Abort_internal;
  (if pool.cfg.ts_lease > 1 then
     let locks = pool.locks in
     for i = 0 to th.nrset - 1 do
       Lock_table.bump_rts locks th.rset_idx.(i) cts
     done);
  cts

(* Each commit path returns its (log_write, fence, write_back)
   simulated-ns breakdown; {!commit} charges the remainder to the STM
   bookkeeping bucket so the four phases sum to the total exactly. *)
let commit_redo tx =
  let th = tx.th in
  let pool = th.pool in
  let env = th.view.Pmem.env in
  let cts = draw_cts_validated tx in
  if pool.txprof != None then prof_phase th Obs.Txprof.ph_validate;
  (* Ascending-address write order, encoded into the thread's reusable
     buffer: no per-commit lists, arrays, or boxed values. *)
  let n = sorted_addrs_of th tx.wset in
  let len = Redo_log.encoded_words ~nwrites:n in
  let enc = ensure_enc th len in
  Redo_log.encode_header_bytes enc ~ts:cts ~nwrites:n;
  for i = 0 to n - 1 do
    let addr = th.sorted.(i) in
    let slot = Wset.find_slot tx.wset addr in
    Bytes.set_int64_le enc (8 * ((2 * i) + 2)) (Int64.of_int addr);
    Wset.blit_value tx.wset slot enc (8 * ((2 * i) + 3))
  done;
  let t0 = env.Scm.Env.now () in
  (match pmchk th with
  | None -> ()
  | Some chk ->
      Scm.Pmcheck.commit_begin chk ~log:(th_log_base th) th.sorted n);
  let span = append_record tx enc ~len in
  let t1 = env.Scm.Env.now () in
  (if pool.txprof != None then begin
     (* log phase up to t1, minus any log-full stall drained inline,
        which is its own phase (truncation wait) *)
     let stall = th.prof_stall_ns in
     th.prof_stall_ns <- 0;
     th.prof_phases.(Obs.Txprof.ph_trunc_wait) <-
       th.prof_phases.(Obs.Txprof.ph_trunc_wait) + stall;
     th.prof_phases.(Obs.Txprof.ph_log) <-
       th.prof_phases.(Obs.Txprof.ph_log) + (t1 - th.prof_mark) - stall;
     th.prof_mark <- t1;
     th.prof_bytes <- th.prof_bytes + (8 * len)
   end);
  (* the durability point: one fence — shared with the other
     transactions retiring in the same drain window under group commit *)
  if pool.cfg.group_commit then gc_retire th else Pmlog.Rawl.flush th.log;
  (match pmchk th with
  | None -> ()
  | Some chk -> Scm.Pmcheck.commit_logged chk ~log:(th_log_base th));
  let t2 = env.Scm.Env.now () in
  if pool.txprof != None then prof_phase th Obs.Txprof.ph_fence;
  for i = 0 to n - 1 do
    (* the ascending write-back reads each value back out of the staged
       record, so the write set is probed once per write, not twice *)
    Pmem.store th.view th.sorted.(i)
      (Bytes.get_int64_le enc (8 * ((2 * i) + 3)))
  done;
  (if pool.cfg.pipeline then begin
     (* Pipelined: the record is durable and the new values are in the
        cache, so hand the expensive tail — data-line flushing and log
        truncation — to the drainer and release the locks right away.
        Readers that acquire these lines before the write-back lands
        observe the committed values through the cache at version
        [cts]; a crash is covered because recovery replays the still
        unretired record. *)
     race_q_push th;
     Queue.push
       { span; addrs = Array.sub th.sorted 0 n; txid = th.cur_txid }
       th.pending_q;
     match pool.drain_wake with Some wake -> wake th.id | None -> ()
   end
   else
     match pool.cfg.truncation with
     | Sync when pool.cfg.group_commit ->
         (* defer, then retire a whole batch at once: the data-line
            flush dedupes lines hot across the batch and the head
            advances (one fence) once per batch instead of once per
            commit *)
         race_q_push th;
         Queue.push
           { span; addrs = Array.sub th.sorted 0 n; txid = th.cur_txid }
           th.pending_q;
         if Queue.length th.pending_q >= max 1 pool.cfg.gc_trunc_batch then
           drain_truncations_batched th
     | Sync ->
         flush_sorted_lines th.view th.sorted n;
         Pmlog.Rawl.truncate_all th.log;
         (* synchronous truncation retires the commit's own log record
            inline: the causal flow ends here, not on a deferred drain *)
         if th.cur_txid <> 0 then
           Obs.flow pool.obs ~phase:`End ~id:th.cur_txid
     | Async ->
         race_q_push th;
         Queue.push
           { span; addrs = Array.sub th.sorted 0 n; txid = th.cur_txid }
           th.pending_q);
  let t3 = env.Scm.Env.now () in
  if pool.txprof != None then prof_phase th Obs.Txprof.ph_write_back;
  release_locks tx ~committed:true ~version:cts;
  (match pmchk th with
  | None -> ()
  | Some chk -> Scm.Pmcheck.commit_end chk ~log:(th_log_base th));
  if pool.cfg.pipeline then pipe_backpressure th;
  (cts, t1 - t0, t2 - t1, t3 - t2)

let commit_undo tx =
  let th = tx.th in
  let pool = th.pool in
  let env = th.view.Pmem.env in
  (* same validate-before-cts window (and lease floor) as {!commit_redo} *)
  let cts = draw_cts_validated tx in
  if pool.txprof != None then prof_phase th Obs.Txprof.ph_validate;
  (* new values are already in place; make them durable, then the
     atomic log truncation is the commit point.  The per-store log
     appends were charged eagerly in {!store}, so log_write is 0. *)
  let t0 = env.Scm.Env.now () in
  let n = sorted_addrs_of th tx.old_vals in
  flush_sorted_lines th.view th.sorted n;
  let t1 = env.Scm.Env.now () in
  if pool.txprof != None then prof_phase th Obs.Txprof.ph_write_back;
  Pmlog.Rawl.truncate_all th.log;
  if th.cur_txid <> 0 then Obs.flow pool.obs ~phase:`End ~id:th.cur_txid;
  let t2 = env.Scm.Env.now () in
  if pool.txprof != None then prof_phase th Obs.Txprof.ph_fence;
  release_locks tx ~committed:true ~version:cts;
  (match pmchk th with
  | None -> ()
  | Some chk -> Scm.Pmcheck.commit_end chk ~log:(th_log_base th));
  (cts, 0, t2 - t1, t1 - t0)

(* The oracle's view of a committed transaction: first-read values, the
   write set with its final values, and the commit timestamp.  Only
   built when a history hook is installed, so the allocation is free on
   the default path.  Under eager undo the committed values live in
   memory; [load_nt] reads them back without charging simulated time,
   so no yield separates lock release from the record. *)
let history_record tx ~cts ~read_only =
  let th = tx.th in
  let reads =
    Array.init th.nreads (fun i -> (th.r_addrs.(i), th.r_vals.(i)))
  in
  let writes =
    if read_only then [||]
    else
      match th.pool.cfg.version_mgmt with
      | Lazy_redo ->
          Array.init (Wset.size tx.wset) (fun i ->
              let addr = Wset.key tx.wset i in
              (addr, Wset.get tx.wset addr))
      | Eager_undo ->
          Array.init (Wset.size tx.old_vals) (fun i ->
              let addr = Wset.key tx.old_vals i in
              (addr, Pmem.load_nt th.view addr))
  in
  History.Commit { History.tid = th.id; cts; read_only; reads; writes }

(* Close the ledger entry: the residual since the last mark is commit
   bookkeeping ("other"), so the phases partition [start, mark] exactly
   and the entry's phase sum equals its total. *)
let prof_record tx ~writes =
  match tx.th.pool.txprof with
  | None -> ()
  | Some tp ->
      let th = tx.th in
      prof_phase th Obs.Txprof.ph_other;
      Obs.Txprof.record tp ~txid:th.cur_txid ~tid:th.id
        ~start_ts:th.prof_start
        ~total_ns:(th.prof_mark - th.prof_start)
        ~retries:th.prof_retries ~bytes_logged:th.prof_bytes ~writes
        ~phases:th.prof_phases

let commit tx =
  let pool = tx.th.pool in
  let env = tx.th.view.Pmem.env in
  let t0 = env.Scm.Env.now () in
  if pool.txprof != None then prof_phase tx.th Obs.Txprof.ph_exec;
  delay tx (latency tx).txn_commit_ns;
  let read_only =
    match pool.cfg.version_mgmt with
    | Lazy_redo -> Wset.size tx.wset = 0
    | Eager_undo -> Wset.size tx.old_vals = 0
  in
  if read_only then begin
    (* With the shared counter, TL2's validation-free read-only commit
       is sound as-is: every writer that committed after this
       transaction began drew a timestamp above [rv], so the loads'
       version checks against [rv] already prove the snapshot.  Leased
       timestamps break that argument — a writer can commit *below*
       [rv] — so the read-only commit serializes TicToc-style at the
       newest version it read instead: revalidate the read set and
       reserve that position on each read lock in the same yield-free
       step, forcing later writers of those addresses above it. *)
    if pool.cfg.ts_lease > 1 && not (validate tx) then false
    else begin
      let cts =
        if pool.cfg.ts_lease <= 1 then tx.rv
        else begin
          let th = tx.th in
          let locks = pool.locks in
          let p = ref 0 in
          for i = 0 to th.nrset - 1 do
            if th.rset_ver.(i) > !p then p := th.rset_ver.(i)
          done;
          for i = 0 to th.nrset - 1 do
            Lock_table.bump_rts locks th.rset_idx.(i) !p
          done;
          !p
        end
      in
      pool.ro_commits <- pool.ro_commits + 1;
      (match pool.history with
      | None -> ()
      | Some emit ->
          (* a read-only commit orders directly after the writer whose
             cts it validated against *)
          emit (history_record tx ~cts ~read_only:true));
      prof_record tx ~writes:0;
      true
    end
  end
  else if not (validate tx) then false
  else begin
    let ws_size =
      match pool.cfg.version_mgmt with
      | Lazy_redo -> Wset.size tx.wset
      | Eager_undo -> Wset.size tx.old_vals
    in
    let cts, lw, fe, wb =
      match pool.cfg.version_mgmt with
      | Lazy_redo -> commit_redo tx
      | Eager_undo -> commit_undo tx
    in
    finalize_heap_effects tx;
    let total = env.Scm.Env.now () - t0 in
    Obs.Metrics.record pool.h_total total;
    Obs.Metrics.record pool.h_log_write lw;
    Obs.Metrics.record pool.h_fence fe;
    Obs.Metrics.record pool.h_write_back wb;
    Obs.Metrics.record pool.h_stm (max 0 (total - lw - fe - wb));
    Obs.complete pool.obs Obs.Trace.Txn_commit ~ts:t0 ~dur:total ~arg:ws_size;
    prof_record tx ~writes:ws_size;
    pool.commits <- pool.commits + 1;
    (match pool.history with
    | None -> ()
    | Some emit -> emit (history_record tx ~cts ~read_only:false));
    true
  end

(* Recycle the thread's tables: after [clear] the attempt starts from
   empty state without having allocated anything but this record. *)
let fresh_txn th =
  Wset.clear th.t_wset;
  Wset.clear th.t_old_vals;
  th.nwlocks <- 0;
  th.nrset <- 0;
  th.nreads <- 0;
  {
    th;
    rv = Timestamp.now th.pool.ts;
    wset = th.t_wset;
    old_vals = th.t_old_vals;
    resvs = [];
    freed_small = [];
    large_allocs = [];
    large_frees = [];
  }

let cancel (_ : t) = raise Cancelled

let thread_id (tx : t) = tx.th.id

let run th f =
  match th.current with
  | Some tx -> f tx  (* flat nesting *)
  | None ->
      let pool = th.pool in
      let env = th.view.Pmem.env in
      Obs.set_tid pool.obs th.id;
      (* Stamp a fresh transaction id down the stack: the log and the
         access layer attribute appends — and the write-backs and
         drains they later cause — to it.  Plain int stores: no
         simulated time, no rng, no allocation, so the default
         schedule and sim figures are untouched. *)
      race_rmw pool "mtm.txid";
      pool.next_txid <- pool.next_txid + 1;
      let txid = pool.next_txid in
      th.cur_txid <- txid;
      env.Scm.Env.cur_txid <- txid;
      Pmlog.Rawl.set_owner th.log txid;
      (* Publish the contention-manager priority stamp: assigned once
         per [run], not per attempt, so a transaction that keeps
         retrying keeps its (low, old) stamp and ages into priority. *)
      race_rel_stamp pool th.id;
      pool.cm_stamps.(th.id) <- txid;
      (* [prof_stall_ns] accumulates in [append_record] whether or not a
         ledger is installed, so it must start clean unconditionally: a
         stale stall from an unprofiled transaction leaking into the
         first profiled one would land in its truncation-wait phase AND
         be subtracted from its log phase — double-counted against the
         phase-sum invariant (regression in test_obs.ml). *)
      th.prof_stall_ns <- 0;
      (if pool.txprof != None then begin
         Array.fill th.prof_phases 0 Obs.Txprof.nphases 0;
         let now = env.Scm.Env.now () in
         th.prof_start <- now;
         th.prof_mark <- now;
         th.prof_retries <- 0;
         th.prof_bytes <- 0
       end);
      let rec attempt n =
        if n > pool.cfg.max_attempts then begin
          pool.contention_failures <- pool.contention_failures + 1;
          th.cur_txid <- 0;
          env.Scm.Env.cur_txid <- 0;
          Pmlog.Rawl.set_owner th.log 0;
          race_rel_stamp pool th.id;
          pool.cm_stamps.(th.id) <- max_int;
          raise Contention
        end;
        th.view.Pmem.env.delay (th.view.Pmem.env.machine.latency.txn_begin_ns);
        Obs.instant pool.obs Obs.Trace.Txn_begin ~arg:n;
        let tx = fresh_txn th in
        th.current <- Some tx;
        let finish_abort () =
          th.current <- None;
          (if pool.txprof != None then begin
             (* the failed attempt's work was execution; rollback and
                the delay below are backoff *)
             prof_phase th Obs.Txprof.ph_exec;
             th.prof_retries <- th.prof_retries + 1
           end);
          rollback tx;
          Obs.instant pool.obs Obs.Trace.Txn_abort ~arg:n;
          (match pool.history with
          | None -> ()
          | Some emit -> emit (History.Abort { tid = th.id; attempt = n }));
          pool.retries <- pool.retries + 1;
          Obs.instant pool.obs Obs.Trace.Txn_retry ~arg:(n + 1);
          (* Randomized backoff before retrying.  The jitter draw is the
             one control-flow-relevant random number in the STM; routing
             it through the schedule (when one is recording) is what
             makes [sched_explore --replay] bit-exact across aborts —
             both policies draw from the same 4-way stream, so traces
             stay comparable across contention managers. *)
          let jitter =
            match pool.backoff_draw with
            | Some draw -> draw 4
            | None -> Random.State.int th.rng 4
          in
          let backoff =
            match pool.cfg.cm with
            | Cm_legacy -> 100 * n * (1 + jitter)
            | Cm_adaptive ->
                (* capped exponential, scaled by how contended the line
                   that killed this attempt has been: hot lines back off
                   harder and desynchronize, cold conflicts retry fast *)
                let hits = line_abort_count pool th.last_conflict_addr in
                let shift = min (n - 1 + min hits 3) 7 in
                min pool.cfg.cm_backoff_cap_ns (50 * (1 lsl shift) * (1 + jitter))
          in
          pool.backoff_ns <- pool.backoff_ns + backoff;
          th.view.Pmem.env.delay backoff;
          if pool.txprof != None then prof_phase th Obs.Txprof.ph_backoff;
          attempt (n + 1)
        in
        match f tx with
        | result ->
            let committed =
              try commit tx with
              | Abort_internal -> false
              | Scm.Crashpoint.Simulated_crash _ as e ->
                  th.current <- None;
                  raise e
            in
            if committed then begin
              th.current <- None;
              th.cur_txid <- 0;
              env.Scm.Env.cur_txid <- 0;
              Pmlog.Rawl.set_owner th.log 0;
              race_rel_stamp pool th.id;
              pool.cm_stamps.(th.id) <- max_int;
              result
            end
            else finish_abort ()
        | exception Abort_internal -> finish_abort ()
        | exception (Scm.Crashpoint.Simulated_crash _ as e) ->
            (* The machine is dead mid-transaction: do NOT roll back —
               rollback touches persistent state through the crashed
               machine and must not run.  Recovery after reopen is what
               undoes (or completes) this transaction. *)
            th.current <- None;
            raise e
        | exception e ->
            th.current <- None;
            rollback tx;
            th.cur_txid <- 0;
            env.Scm.Env.cur_txid <- 0;
            Pmlog.Rawl.set_owner th.log 0;
            race_rel_stamp pool th.id;
            pool.cm_stamps.(th.id) <- max_int;
            raise e
      in
      attempt 1
