(* The volatile lock array, optionally striped.

   A stripe owns its own version/owner arrays: in a real runtime each
   stripe lives on its own cache lines, so threads working disjoint
   address ranges stop false-sharing lock metadata.  Adjacent 64-byte
   lines map to *different* stripes (the stripe index comes from the
   low line bits), and each stripe strides over the address space with
   its own entry array — so striping also multiplies the total entry
   count, pushing the aliasing wrap out by the stripe factor.

   With [stripes = 1] (the default) the handle returned by
   {!index_of} is exactly the historical [(addr lsr 6) land mask]:
   every schedule, sim figure and regression trace recorded against
   the flat table replays unchanged.

   Each entry also carries:
   - [addrs]: the address the current owner acquired it for — a
     conflicting acquirer with a *different* address never touched
     common data; the table aliased them together (a false conflict,
     which {!aliased} exposes so the STM can count them);
   - [rts]: the largest commit timestamp any validated reader has
     ordered itself at.  With leased (out-of-arrival-order) commit
     timestamps a writer must publish a version above every reader
     that already serialized against the old version; [rts] is where
     readers leave that watermark (TicToc-style). *)

type stripe = {
  versions : int array;
  owners : int array;
  addrs : int array; (* owner's acquiring address; 0 = unknown *)
  rts : int array; (* max cts/rv a validated reader serialized at *)
}

type t = {
  stripes : stripe array;
  sbits : int; (* log2 (Array.length stripes) *)
  smask : int;
  mask : int; (* per-stripe entry count - 1 *)
  mutable race : Race_api.hooks option;
      (* Every entry is a single-word CAS-able atomic in a real
         runtime: acquisition is an rmw, releases publish, reads
         acquire.  Each entry is its own sync object, so HB flows
         per-stripe-entry, never through the table as a whole
         (DESIGN.md section 18). *)
}

let make_stripe n =
  {
    versions = Array.make n 0;
    owners = Array.make n (-1);
    addrs = Array.make n 0;
    rts = Array.make n 0;
  }

let create ?(bits = 18) ?(stripes = 1) () =
  if stripes < 1 || stripes land (stripes - 1) <> 0 then
    invalid_arg "Lock_table.create: stripes must be a power of two";
  let n = 1 lsl bits in
  let sbits =
    let rec log2 acc = function 1 -> acc | k -> log2 (acc + 1) (k lsr 1) in
    log2 0 stripes
  in
  {
    stripes = Array.init stripes (fun _ -> make_stripe n);
    sbits;
    smask = stripes - 1;
    mask = n - 1;
    race = None;
  }

let set_race t h = t.race <- h

let[@inline] entry_label h = "mtm.lock." ^ string_of_int h

let[@inline] race_acq t h =
  match t.race with
  | None -> ()
  | Some hk -> hk.Race_api.acquire (entry_label h)

let[@inline] race_rel t h =
  match t.race with
  | None -> ()
  | Some hk -> hk.Race_api.release (entry_label h)

let[@inline] race_rmw t h =
  match t.race with
  | None -> ()
  | Some hk -> hk.Race_api.rmw (entry_label h)

(* Each lock covers one 64-byte line of the address space (the paper:
   "each lock covering a portion of the address space").  Range
   striding, not hashing: contiguous writes take contiguous locks, so a
   large write set occupies few entries and disjoint structures rarely
   false-conflict.  The handle packs (entry, stripe); with one stripe
   it degenerates to the flat index. *)
let[@inline] index_of t addr =
  let line = addr lsr 6 in
  let s = line land t.smask in
  let slot = (line lsr t.sbits) land t.mask in
  (slot lsl t.sbits) lor s

let[@inline] stripe_of t h = t.stripes.(h land t.smask)
let[@inline] slot_of t h = h lsr t.sbits
let[@inline] version t h =
  race_acq t h;
  (stripe_of t h).versions.(slot_of t h)

let[@inline] owner t h =
  race_acq t h;
  (stripe_of t h).owners.(slot_of t h)

let[@inline] rts t h =
  race_acq t h;
  (stripe_of t h).rts.(slot_of t h)

let[@inline] held_addr t h =
  race_acq t h;
  (stripe_of t h).addrs.(slot_of t h)

(* Only meaningful while the entry is held: conflicts are attributed at
   the moment they are observed, against the current owner. *)
let[@inline] aliased t h ~addr =
  let held = held_addr t h in
  held <> 0 && held <> addr

let[@inline] try_acquire t h ~owner ~addr =
  let st = stripe_of t h in
  let slot = slot_of t h in
  if st.owners.(slot) = -1 then begin
    race_rmw t h;
    st.owners.(slot) <- owner;
    st.addrs.(slot) <- addr;
    true
  end
  else begin
    (* A failed (or re-entrant) probe still reads the word. *)
    race_acq t h;
    st.owners.(slot) = owner
  end

let[@inline] release t h =
  race_rel t h;
  (stripe_of t h).owners.(slot_of t h) <- -1

let[@inline] release_versioned t h ~version =
  race_rel t h;
  let st = stripe_of t h in
  let slot = slot_of t h in
  st.versions.(slot) <- version;
  st.owners.(slot) <- -1

(* Reader watermark: monotone, bumped inside the same atomic
   (yield-free) step as the validation that justifies it. *)
let[@inline] bump_rts t h v =
  race_rmw t h;
  let st = stripe_of t h in
  let slot = slot_of t h in
  if st.rts.(slot) < v then st.rts.(slot) <- v

let stripes t = t.smask + 1
let entries t = (t.mask + 1) * (t.smask + 1)
