(* The shared commit-timestamp counter, plus per-thread leases.

   The counter is one shared cache line: bumping it costs coherence
   traffic that grows with the number of threads hammering it, modeled
   as [timestamp_ns x active threads] per shared-line transaction.
   {!next} is the legacy one-at-a-time bump (one shared transaction per
   commit); {!draw} hands out timestamps from a thread-local lease of
   [size] consecutive values, touching the shared line only on refill —
   the scalable path.

   Leased values can be issued out of global arrival order (a thread
   can commit from an old lease after a neighbour committed from a
   newer one), so callers must pass the serialization [floor] — the
   largest version or read timestamp the commit must order after.  A
   lease whose remaining values cannot exceed the floor is abandoned
   and refilled above it; disjoint leases keep every issued value
   unique, which is what recovery's replay-in-cts-order relies on. *)

type t = {
  mutable now : int;
  mutable active : int;
  mutable race : Race_api.hooks option;
      (* The counter is one shared atomic word: bumps and lease refills
         are rmw edges on "mtm.ts.now" (DESIGN.md section 18).  Leases
         themselves are thread-private and fire nothing. *)
}

type lease = { mutable next : int; mutable last : int }

let[@inline] race_rmw t label =
  match t.race with None -> () | Some hk -> hk.Race_api.rmw label

(* Commit timestamps are packed into 62 usable bits of a redo-record
   header word (the torn-bit log steals one bit, the sign another).
   Wrapping silently would reorder recovery replay; fail loud instead. *)
let max_cts = (1 lsl 62) - 1

exception Exhausted

let () =
  Printexc.register_printer (function
    | Exhausted ->
        Some
          (Printf.sprintf
             "Mtm.Timestamp.Exhausted: commit timestamp space exhausted \
              (62-bit ceiling %#x)"
             max_cts)
    | _ -> None)

(* [max_cts] is also OCaml's max_int, so arithmetic one past the
   ceiling wraps negative before a [> max_cts] comparison could see
   it; a negative candidate is the wrapped form of exhaustion. *)
let[@inline] check_ceiling n = if n > max_cts || n < 0 then raise Exhausted

let create () = { now = 0; active = 0; race = None }
let set_race t h = t.race <- h
let now t = t.now
let lease_create () = { next = 1; last = 0 } (* empty: next > last *)
let lease_remaining l = if l.last >= l.next then l.last - l.next + 1 else 0

let next t (env : Scm.Env.t) =
  env.delay (env.machine.latency.timestamp_ns * max 1 t.active);
  race_rmw t "mtm.ts.now";
  check_ceiling (t.now + 1);
  t.now <- t.now + 1;
  t.now

(* Draw one timestamp strictly above [floor].  With [size <= 1] this is
   exactly the legacy shared bump (the global counter is monotone in
   real time, so it already exceeds any floor a caller can observe).
   Otherwise serve from the lease when it still has a value above the
   floor; refill from the shared counter when it does not — the refill
   is the only step that yields (it charges the coherence cost), which
   is why commit paths re-validate after drawing. *)
let draw t (env : Scm.Env.t) (l : lease) ~size ~floor =
  if size <= 1 then next t env
  else begin
    let cand = if l.next > floor then l.next else floor + 1 in
    if cand <= l.last then begin
      l.next <- cand + 1;
      cand
    end
    else begin
      env.delay (env.machine.latency.timestamp_ns * max 1 t.active);
      (* The refill is the contended shared-word rmw — and the only
         yield in the draw path, which is why commit paths
         re-validate after drawing. *)
      race_rmw t "mtm.ts.now";
      let base = if t.now > floor then t.now else floor in
      check_ceiling (base + size);
      t.now <- base + size;
      l.next <- base + 2;
      l.last <- base + size;
      base + 1
    end
  end

(* Jump the counter forward without issuing values: recovery advances
   past the largest replayed cts in O(1).  Callers charge whatever
   simulated cost the jump models; this only moves the counter. *)
let advance_to t n =
  race_rmw t "mtm.ts.now";
  check_ceiling n;
  if n > t.now then t.now <- n

let register_thread t =
  race_rmw t "mtm.ts.active";
  t.active <- t.active + 1

let unregister_thread t =
  race_rmw t "mtm.ts.active";
  t.active <- max 0 (t.active - 1)
let active_threads t = t.active
