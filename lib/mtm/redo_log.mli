(** Encoding of transaction records in the per-thread RAWL (paper
    section 5).

    A committed transaction appends one record: its global-timestamp
    commit order followed by the (address, new value) pairs of its
    write set.  With write-ahead {e redo} logging, "the only requirement
    is that the log is written completely before any data values are
    updated" — the record is streamed during commit and made durable by
    the RAWL's single tornbit fence. *)

type record = { ts : int; writes : (int * int64) list }

val encode : ts:int -> (int * int64) list -> int64 array
val decode : int64 array -> record option
(** [None] for records that are not well-formed transaction records. *)

val span_words : nwrites:int -> int
(** Stored-word span of a record with that many writes (what the
    asynchronous truncation daemon advances the head by). *)

val encoded_words : nwrites:int -> int
(** Payload length in words of a record with that many writes. *)

val encode_header : int64 array -> ts:int -> nwrites:int -> unit
(** Allocation-free encode into a caller-owned buffer of at least
    {!encoded_words} words: writes the record header; the caller lays
    out (address, value) pairs at offsets [2 + 2i] / [3 + 2i] — the
    layout {!encode} produces and {!decode} parses. *)

val encode_header_bytes : Bytes.t -> ts:int -> nwrites:int -> unit
(** {!encode_header} into a raw little-endian byte staging buffer
    (word [i] at byte [8i], pairs at bytes [8 * (2 + 2i)] /
    [8 * (3 + 2i)]) for {!Pmlog.Rawl.append_bytes}: encoding this way
    never materializes a boxed [Int64] per word. *)
