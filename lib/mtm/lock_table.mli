(** The global array of volatile locks used for encounter-time locking
    (paper section 5): "a global array of volatile locks, with each lock
    covering a portion of the address space".

    Each entry holds a version (the commit timestamp of the last
    transaction to write a covered address), an owner (the transaction
    currently holding the lock, if any), the address the owner acquired
    it for (false-conflict attribution), and a reader timestamp
    watermark used when commit timestamps are leased out of arrival
    order.  The table is volatile: after a crash it is simply
    recreated, because recovery replays committed transactions
    single-threadedly.

    The table can be striped: entries are spread over [stripes]
    independent arrays so adjacent lines land on different stripes and
    lock metadata for disjoint address ranges stops sharing cache
    lines.  Handles returned by {!index_of} encode (entry, stripe);
    with one stripe (the default) the handle is exactly the historical
    flat index. *)

type t

val create : ?bits:int -> ?stripes:int -> unit -> t
(** [stripes * 2^bits] entries (default bits 18, stripes 1).
    @raise Invalid_argument unless [stripes] is a power of two. *)

val index_of : t -> int -> int
(** Map an address to a handle for its covering lock: one lock per
    64-byte line, wrapping around the table. *)

val version : t -> int -> int
val owner : t -> int -> int
(** Owning transaction id, or -1. *)

val rts : t -> int -> int
(** Reader watermark: the largest timestamp a validated reader has
    serialized at against this entry's current version. *)

val held_addr : t -> int -> int
(** The address the current owner acquired the entry for (0 when
    unknown); stale once the entry is free. *)

val aliased : t -> int -> addr:int -> bool
(** Whether the entry's current owner acquired it for a different
    address than [addr] — i.e. a conflict observed now would be a
    false (aliasing) conflict.  Only meaningful while held. *)

val try_acquire : t -> int -> owner:int -> addr:int -> bool
(** Acquire if free or already ours; false if another owner holds it.
    Records [addr] as the held address on a fresh acquire. *)

val release : t -> int -> unit
(** Release without changing the version (abort path). *)

val release_versioned : t -> int -> version:int -> unit
(** Release and publish a new version (commit path). *)

val bump_rts : t -> int -> int -> unit
(** Raise the reader watermark to at least the given timestamp. *)

val stripes : t -> int
val entries : t -> int

val set_race : t -> Race_api.hooks option -> unit
(** Race-detection hooks (DESIGN.md section 18).  Each entry is a
    single-word atomic and its own sync object: {!try_acquire} and
    {!bump_rts} are rmw edges, the releases publish, reads acquire.
    [None] (the default) keeps every site a single never-taken
    branch. *)
