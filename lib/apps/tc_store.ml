type backend =
  | Msync of Baseline.Msync_store.t
  | Mnemo of { inst : Mnemosyne.t; slot : int }

type t = { backend : backend; request_ns : int }

type worker = {
  store : t;
  env : Scm.Env.t;
  mtm_thread : Mtm.Txn.thread option;
}

let create_msync ?sim ?(request_ns = 16000) disk =
  { backend = Msync (Baseline.Msync_store.create ?sim disk); request_ns }

let create_mnemosyne ?(request_ns = 16000) ?(root = "tc.tree") inst =
  let slot = Mnemosyne.pstatic inst root 8 in
  if Region.Pmem.load (Mnemosyne.view inst) slot = 0L then
    ignore
      (Mnemosyne.atomically inst (fun tx -> Pstruct.Bp_tree.create tx ~slot));
  { backend = Mnemo { inst; slot }; request_ns }

let worker t i env =
  match t.backend with
  | Msync _ -> { store = t; env; mtm_thread = None }
  | Mnemo { inst; _ } ->
      { store = t; env; mtm_thread = Some (Mnemosyne.thread inst i env) }

(* A multi-tenant front-end serves several stores (one persistent root
   per tenant) from one worker thread; binding a fresh [Mnemosyne.thread]
   per store would register one log-owning thread slot per (worker,
   tenant) pair in the pool, so instead the caller binds the slot once
   and shares it across its tenants' stores. *)
let worker_of_thread t th env =
  match t.backend with
  | Msync _ -> invalid_arg "Tc_store.worker_of_thread: msync backend"
  | Mnemo _ -> { store = t; env; mtm_thread = Some th }

let key_bytes k = Bytes.of_string (Printf.sprintf "%016Lx" k)

let tree_of w tx =
  match w.store.backend with
  | Mnemo { slot; _ } ->
      Pstruct.Bp_tree.attach tx ~root:(Int64.to_int (Mtm.Txn.load tx slot))
  | Msync _ -> assert false

let put w k v =
  w.env.Scm.Env.delay w.store.request_ns;
  match w.store.backend with
  | Msync s -> Baseline.Msync_store.put s w.env (key_bytes k) v
  | Mnemo _ ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx -> Pstruct.Bp_tree.put tx (tree_of w tx) k v)

let get w k =
  w.env.Scm.Env.delay (w.store.request_ns / 2);
  match w.store.backend with
  | Msync s -> Baseline.Msync_store.get s w.env (key_bytes k)
  | Mnemo _ ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx -> Pstruct.Bp_tree.find tx (tree_of w tx) k)

let delete w k =
  w.env.Scm.Env.delay w.store.request_ns;
  match w.store.backend with
  | Msync s -> Baseline.Msync_store.delete s w.env (key_bytes k)
  | Mnemo _ ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx -> Pstruct.Bp_tree.remove tx (tree_of w tx) k)

let length w =
  match w.store.backend with
  | Msync s -> Baseline.Msync_store.length s
  | Mnemo _ ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx -> Pstruct.Bp_tree.length tx (tree_of w tx))
