(** A Tokyo-Cabinet-style key/value store core (paper section 6.2,
    table 4).

    Two persistence strategies over the same B+ tree workload:

    - {e Msync}: the stock approach — tree in a memory-mapped file,
      [msync] after every update ({!Baseline.Msync_store});
    - {e Mnemosyne}: "allocate its B+ tree in a persistent region and
      perform updates in durable transactions", locks removed in favour
      of transactional concurrency control.

    The per-request parse/dispatch cost of the TC library is charged on
    every operation; unlike LDAP it is small, which is why storage
    dominates and Mnemosyne's advantage is large here. *)

type t
type worker

val create_msync : ?sim:Sim.t -> ?request_ns:int -> Baseline.Pcm_disk.t -> t

val create_mnemosyne : ?request_ns:int -> ?root:string -> Mnemosyne.t -> t
(** Tree rooted at the [pstatic] named [root] (default "tc.tree").
    A multi-tenant deployment opens one store per tenant, each under
    its own root name — per-tenant persistent state that tools can
    find by name offline ([regionctl stats]). *)

val worker : t -> int -> Scm.Env.t -> worker

val worker_of_thread : t -> Mtm.Txn.thread -> Scm.Env.t -> worker
(** A worker over an already-bound transaction thread, so one thread
    slot (and its log) serves several stores — the shape of a
    multi-tenant worker.  Mnemosyne backend only. *)

val put : worker -> int64 -> Bytes.t -> unit
val get : worker -> int64 -> Bytes.t option
val delete : worker -> int64 -> bool
val length : worker -> int
