(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 6).

   All headline measurements are in SIMULATED time: the SCM latency
   model charges each memory primitive exactly the delays the paper's
   DRAM-based emulator inserted, so latencies and throughputs are
   functions of the modeled PCM, not of this machine's CPU.  Absolute
   numbers therefore differ from the paper's 2.5 GHz Core 2 testbed;
   EXPERIMENTS.md compares the shapes (who wins, by what factor, where
   the crossovers fall), and each section prints the paper's reference
   values alongside.

   Run everything:          dune exec bench/main.exe
   Run selected sections:   dune exec bench/main.exe -- table6 figure4
   Wall-clock microbenches: dune exec bench/main.exe -- --wallclock
   (Bechamel measures host-CPU time, which is only meaningful for the
   CPU-bound kernels, not for the simulated-time experiments.) *)

let tmp_root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "mnemosyne-bench-%d" (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* JSON perf output (--json FILE, --baseline FILE)                     *)

(* Sections register wall-clock/simulated figures here; --json dumps
   them under a stable schema (documented in EXPERIMENTS.md) so CI can
   track the perf trajectory across PRs and fail on regressions. *)
let json_schema = "mnemosyne-bench/1"
let json_sections : (string * (string * float) list) list ref = ref []

let json_add section kvs =
  json_sections := !json_sections @ [ (section, kvs) ]

let json_write file =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": %S,\n  \"sections\": {\n" json_schema);
  List.iteri
    (fun i (name, kvs) ->
      Buffer.add_string buf (Printf.sprintf "    %S: {\n" name);
      List.iteri
        (fun j (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "      %S: %.6g%s\n" k v
               (if j = List.length kvs - 1 then "" else ",")))
        kvs;
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n"
           (if i = List.length !json_sections - 1 then "" else ",")))
    !json_sections;
  Buffer.add_string buf "  }\n}\n";
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

(* Minimal extraction of ["sections"][section][key] from a bench JSON
   file: the schema above is flat enough that locating the section
   object and scanning it for the key is exact.  No JSON library is
   available in the container, and the schema is ours. *)
let json_find ~section ~key text =
  let find_from pat pos =
    let plen = String.length pat in
    let n = String.length text in
    let rec go i =
      if i + plen > n then None
      else if String.sub text i plen = pat then Some (i + plen)
      else go (i + 1)
    in
    go pos
  in
  match find_from (Printf.sprintf "%S: {" section) 0 with
  | None -> None
  | Some sec_start -> (
      let sec_end =
        match String.index_from_opt text sec_start '}' with
        | Some e -> e
        | None -> String.length text
      in
      match find_from (Printf.sprintf "%S:" key) sec_start with
      | Some vpos when vpos < sec_end ->
          let rec skip i =
            if i < sec_end && (text.[i] = ' ' || text.[i] = '\t') then
              skip (i + 1)
            else i
          in
          let s = skip vpos in
          let e = ref s in
          while
            !e < sec_end
            && (match text.[!e] with
               | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
               | _ -> false)
          do
            incr e
          done;
          float_of_string_opt (String.sub text s (!e - s))
      | _ -> None)

(* Compare the just-measured throughput figures against a committed
   baseline; returns the failures (section, key, baseline, current). *)
let json_check_baseline file ~max_regress_pct =
  let text = In_channel.with_open_text file In_channel.input_all in
  let failures = ref [] in
  List.iter
    (fun (section, kvs) ->
      List.iter
        (fun (key, cur) ->
          (* only throughput figures regress downward: host-CPU
             ("wall_") within noise tolerance, and simulated ("sim_")
             throughputs — deterministic, so any drop is a real modeled
             regression, but gated with the same knob to allow
             intentional model changes through --max-regress *)
          let has_prefix p =
            String.length key >= String.length p
            && String.sub key 0 (String.length p) = p
          in
          if
            (has_prefix "wall_" || has_prefix "sim_")
            && String.length key > 6
            && String.sub key (String.length key - 6) 6 = "_per_s"
          then
            match json_find ~section ~key text with
            | Some base when base > 0.0 ->
                let drop = (base -. cur) /. base *. 100.0 in
                if drop > max_regress_pct then
                  failures := (section, key, base, cur) :: !failures
            | Some _ | None -> ())
        kvs)
    !json_sections;
  List.rev !failures

(* The simulated-time and allocation figures are deterministic, not
   statistical: the harness never installs the sanitizer, so a
   sanitizer-disabled build must reproduce the committed baseline's
   sim figures bit-for-bit (at the "%.6g" precision the JSON carries)
   and hold the default commit case inside its minor-word allocation
   budget.  Drift here means modeled behaviour changed — a much
   stronger claim than the throughput gate above, which only bounds
   host-CPU noise. *)
let minor_words_budget = 512.0

let json_check_invariants file =
  let text = In_channel.with_open_text file In_channel.input_all in
  let failures = ref [] in
  List.iter
    (fun (section, kvs) ->
      List.iter
        (fun (key, cur) ->
          (if key = "sim_us_per_commit" then
             match json_find ~section ~key text with
             | Some base
               when Printf.sprintf "%.6g" base <> Printf.sprintf "%.6g" cur ->
                 failures :=
                   Printf.sprintf
                     "%s.%s: simulated figure %.6g differs from baseline %.6g"
                     section key cur base
                   :: !failures
             | Some _ | None -> ());
          if
            key = "minor_words_per_commit" && section = "commit"
            && cur > minor_words_budget
          then
            failures :=
              Printf.sprintf
                "%s.%s: %.1f minor words/commit exceeds the %.0f-word budget"
                section key cur minor_words_budget
              :: !failures)
        kvs)
    !json_sections;
  List.rev !failures

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat tmp_root (Printf.sprintf "%s-%03d" name !n)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* --sched-policy/--sched-seed: run the whole harness under a non-Fifo
   same-time tiebreak (see Sim.Schedule) to check the figures are not
   artifacts of one particular interleaving.  Fifo is the default and
   keeps every section bit-identical to the historical scheduler. *)
let sched_policy = ref Sim.Schedule.Fifo
let sched_seed = ref 0

let bench_sim () =
  Sim.create ~schedule:(Sim.Schedule.make ~seed:!sched_seed !sched_policy) ()

let sim_env sim (m : Scm.Env.machine) =
  Scm.Env.view m ~delay:(fun ns -> Sim.delay sim ns)
    ~now:(fun () -> Sim.now sim)

let sizes = [ 8; 64; 256; 1024; 2048; 4096 ]

(* ------------------------------------------------------------------ *)
(* Hash table runners (figures 4, 5 and 7)                             *)

type ht_result = {
  write_lat_us : float;
  delete_lat_us : float;
  tput_kops : float;  (* inserts + deletes per second, thousands *)
  aborts : int;
}

let geometry =
  {
    Mnemosyne.scm_frames = 16384;
    heap_superblocks = 768;
    heap_large_bytes = 24 * 1024 * 1024;
  }

(* Mnemosyne transactions over the persistent chained hash table.  Each
   thread inserts fresh keys and deletes the key it inserted [lag]
   operations ago, so deletes happen at the same rate as writes and the
   table stays in steady state (paper section 6.3). *)
let run_mtm_hashtable ?(latency = Scm.Latency_model.default) ~threads
    ~value_bytes ~ops_per_thread () =
  let dir = fresh_dir "ht-mtm" in
  let inst = Mnemosyne.open_instance ~geometry ~latency ~dir () in
  let machine = Mnemosyne.machine inst in
  let sim = bench_sim () in
  let heap_mu = Sim.Mutex_r.create sim in
  Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
      Sim.Mutex_r.with_lock heap_mu f);
  let slot = Mnemosyne.pstatic inst "bench.ht" 8 in
  let table =
    Mnemosyne.atomically inst (fun tx ->
        Pstruct.Phashtable.create tx ~slot ~buckets:1024)
  in
  let wlat = Workload.Stats.create () in
  let dlat = Workload.Stats.create () in
  let lag = 16 in
  for i = 0 to threads - 1 do
    Sim.spawn sim (fun () ->
        let env = sim_env sim machine in
        let th = Mnemosyne.thread inst i env in
        let kg = Workload.Keygen.create ~seed:(1000 + i) () in
        let keyname k = Bytes.of_string (Printf.sprintf "t%d-%06d" i k) in
        for k = 0 to ops_per_thread - 1 do
          let value = Workload.Keygen.value kg value_bytes in
          let t0 = Sim.now sim in
          Mtm.Txn.run th (fun tx ->
              Pstruct.Phashtable.put tx table (keyname k) value);
          Workload.Stats.add wlat (Sim.now sim - t0);
          if k >= lag then begin
            let t0 = Sim.now sim in
            Mtm.Txn.run th (fun tx ->
                ignore
                  (Pstruct.Phashtable.remove tx table (keyname (k - lag))));
            Workload.Stats.add dlat (Sim.now sim - t0)
          end
        done)
  done;
  Sim.run sim;
  let ops = Workload.Stats.count wlat + Workload.Stats.count dlat in
  let result =
    {
      write_lat_us = Workload.Stats.mean_us wlat;
      delete_lat_us = Workload.Stats.mean_us dlat;
      tput_kops =
        Workload.Stats.throughput_per_s ~ops ~elapsed_ns:(Sim.now sim)
        /. 1000.0;
      aborts = (Mtm.Txn.stats (Mnemosyne.pool inst)).aborts;
    }
  in
  rm_rf dir;
  result

(* Berkeley DB on PCM-disk, committing every update. *)
let run_bdb_hashtable ?(latency = Scm.Latency_model.default) ~threads
    ~value_bytes ~ops_per_thread () =
  let disk = Baseline.Pcm_disk.create ~latency ~nblocks:4096 () in
  let sim = bench_sim () in
  let bdb = Baseline.Bdb.create ~sim ~cache_pages:512 disk in
  let machine = Scm.Env.make_machine ~latency ~nframes:16 () in
  let wlat = Workload.Stats.create () in
  let dlat = Workload.Stats.create () in
  let lag = 16 in
  for i = 0 to threads - 1 do
    Sim.spawn sim (fun () ->
        let env = sim_env sim machine in
        let kg = Workload.Keygen.create ~seed:(2000 + i) () in
        let keyname k = Bytes.of_string (Printf.sprintf "t%d-%06d" i k) in
        for k = 0 to ops_per_thread - 1 do
          let value = Workload.Keygen.value kg value_bytes in
          let t0 = Sim.now sim in
          Baseline.Bdb.put bdb env (keyname k) value;
          Workload.Stats.add wlat (Sim.now sim - t0);
          if k >= lag then begin
            let t0 = Sim.now sim in
            ignore (Baseline.Bdb.delete bdb env (keyname (k - lag)));
            Workload.Stats.add dlat (Sim.now sim - t0)
          end
        done)
  done;
  Sim.run sim;
  let ops = Workload.Stats.count wlat + Workload.Stats.count dlat in
  {
    write_lat_us = Workload.Stats.mean_us wlat;
    delete_lat_us = Workload.Stats.mean_us dlat;
    tput_kops =
      Workload.Stats.throughput_per_s ~ops ~elapsed_ns:(Sim.now sim) /. 1000.0;
    aborts = 0;
  }

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5                                                     *)

let figures_4_and_5 () =
  let thread_counts = [ 1; 2; 4 ] in
  let results = Hashtbl.create 64 in
  List.iter
    (fun threads ->
      List.iter
        (fun size ->
          let ops = if size >= 2048 then 120 else 250 in
          Hashtbl.replace results ("MTM", threads, size)
            (run_mtm_hashtable ~threads ~value_bytes:size ~ops_per_thread:ops
               ());
          Hashtbl.replace results ("BDB", threads, size)
            (run_bdb_hashtable ~threads ~value_bytes:size ~ops_per_thread:ops
               ()))
        sizes)
    thread_counts;
  let cell f sys threads size = f (Hashtbl.find results (sys, threads, size)) in
  let matrix f =
    List.map
      (fun size ->
        string_of_int size
        :: List.concat_map
             (fun t ->
               [
                 Printf.sprintf "%.1f" (cell f "BDB" t size);
                 Printf.sprintf "%.1f" (cell f "MTM" t size);
               ])
             thread_counts)
      sizes
  in
  let header =
    "value size"
    :: List.concat_map
         (fun t -> [ Printf.sprintf "BDB-%dT" t; Printf.sprintf "MTM-%dT" t ])
         thread_counts
  in
  Workload.Report.section "figure4"
    "hashtable write latency, Mnemosyne transactions vs Berkeley DB (us)";
  Workload.Report.table ~header (matrix (fun r -> r.write_lat_us));
  Workload.Report.note
    "paper: MTM ~6x lower latency than BDB-1T below 2048 B; BDB lower above";
  Workload.Report.note
    (Printf.sprintf
       "MTM delete latency stays flat as values grow: %.1f us at 64 B vs %.1f us at 4096 B"
       (cell (fun r -> r.delete_lat_us) "MTM" 1 64)
       (cell (fun r -> r.delete_lat_us) "MTM" 1 4096));
  Workload.Report.section "figure5"
    "hashtable update throughput, inserts+deletes (kops/s)";
  Workload.Report.table ~header (matrix (fun r -> r.tput_kops));
  let scaling sys size =
    cell (fun r -> r.tput_kops) sys 4 size
    /. cell (fun r -> r.tput_kops) sys 1 size
  in
  Workload.Report.note
    (Printf.sprintf
       "scaling 1T->4T at 64 B: MTM %.2fx (paper: near-linear), BDB %.2fx (paper: stops at 2T)"
       (scaling "MTM" 64) (scaling "BDB" 64));
  Workload.Report.note
    (Printf.sprintf "MTM aborts at 4T/64B: %d (encounter-time conflicts)"
       (cell (fun r -> r.aborts) "MTM" 4 64))

(* ------------------------------------------------------------------ *)
(* Figure 7: sensitivity to SCM write latency                          *)

let figure7 () =
  Workload.Report.section "figure7"
    "Mnemosyne speedup over Berkeley DB vs SCM write latency (1 thread)";
  let lats = [ 150; 1000; 2000 ] in
  let rows =
    List.map
      (fun size ->
        string_of_int size
        :: List.map
             (fun l ->
               let latency =
                 Scm.Latency_model.with_pcm_write_ns Scm.Latency_model.default
                   l
               in
               let ops = if size >= 2048 then 120 else 200 in
               let mtm =
                 run_mtm_hashtable ~latency ~threads:1 ~value_bytes:size
                   ~ops_per_thread:ops ()
               in
               let bdb =
                 run_bdb_hashtable ~latency ~threads:1 ~value_bytes:size
                   ~ops_per_thread:ops ()
               in
               Printf.sprintf "%.2fx" (bdb.write_lat_us /. mtm.write_lat_us))
             lats)
      sizes
  in
  Workload.Report.table
    ~header:("value size" :: List.map (fun l -> Printf.sprintf "%d ns" l) lats)
    rows;
  Workload.Report.note
    "paper: always faster at small sizes; advantage shrinks with latency,";
  Workload.Report.note
    "break-even around 1024 B at 2000 ns (>1x = Mnemosyne faster)"

(* ------------------------------------------------------------------ *)
(* Table 4: OpenLDAP and Tokyo Cabinet                                 *)

let run_ldap backend_name =
  let threads = 4 and adds_per_thread = 250 in
  let dir = fresh_dir "ldap" in
  let sim = bench_sim () in
  let latency = Scm.Latency_model.default in
  let server, machine, cleanup =
    match backend_name with
    | `Bdb ->
        let disk = Baseline.Pcm_disk.create ~latency ~nblocks:4096 () in
        ( Apps.Ldap_server.create_bdb ~sim disk,
          Scm.Env.make_machine ~latency ~nframes:16 (),
          fun () -> () )
    | `Ldbm ->
        let disk = Baseline.Pcm_disk.create ~latency ~nblocks:4096 () in
        ( Apps.Ldap_server.create_ldbm ~sim disk,
          Scm.Env.make_machine ~latency ~nframes:16 (),
          fun () -> () )
    | `Mnemosyne ->
        let inst = Mnemosyne.open_instance ~geometry ~latency ~dir () in
        let heap_mu = Sim.Mutex_r.create sim in
        Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
            Sim.Mutex_r.with_lock heap_mu f);
        ( Apps.Ldap_server.create_mnemosyne inst,
          Mnemosyne.machine inst,
          fun () -> rm_rf dir )
  in
  for i = 0 to threads - 1 do
    Sim.spawn sim (fun () ->
        let w = Apps.Ldap_server.worker server i (sim_env sim machine) in
        let kg = Workload.Keygen.create ~seed:(3000 + i) () in
        for k = 0 to adds_per_thread - 1 do
          Apps.Ldap_server.add_entry w
            ~dn:(Int64.of_int ((i * 1_000_000) + k))
            ~attr_id:(Workload.Keygen.uniform_int kg 7)
            ~payload:(Workload.Keygen.value kg 256)
        done)
  done;
  Sim.run sim;
  let tput =
    Workload.Stats.throughput_per_s
      ~ops:(threads * adds_per_thread)
      ~elapsed_ns:(Sim.now sim)
  in
  cleanup ();
  tput

let run_tc ?(threads = 1) ?request_ns backend_name ~value_bytes =
  let ops = 400 / threads in
  let dir = fresh_dir "tc" in
  let sim = bench_sim () in
  let store, machine, cleanup =
    match backend_name with
    | `Msync ->
        let disk = Baseline.Pcm_disk.create ~nblocks:4096 () in
        ( Apps.Tc_store.create_msync ~sim ?request_ns disk,
          Scm.Env.make_machine ~nframes:16 (),
          fun () -> () )
    | `Mnemosyne ->
        let inst = Mnemosyne.open_instance ~geometry ~dir () in
        let heap_mu = Sim.Mutex_r.create sim in
        Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
            Sim.Mutex_r.with_lock heap_mu f);
        ( Apps.Tc_store.create_mnemosyne ?request_ns inst,
          Mnemosyne.machine inst,
          fun () -> rm_rf dir )
  in
  for i = 0 to threads - 1 do
    Sim.spawn sim (fun () ->
        let w = Apps.Tc_store.worker store i (sim_env sim machine) in
        let kg = Workload.Keygen.create ~seed:(7 + i) () in
        let lag = 16 in
        (* threads share the key space, as the paper's TC run did —
           contention on the tree is the point of its aside; under heavy
           conflict the STM can give up a batch of retries, so keep
           retrying like TinySTM would *)
        let rec with_retry f =
          try f () with Mtm.Txn.Contention ->
            Sim.delay sim 2_000;
            with_retry f
        in
        for k = 0 to ops - 1 do
          let key = (k * threads) + i in
          with_retry (fun () ->
              Apps.Tc_store.put w (Int64.of_int key)
                (Workload.Keygen.value kg value_bytes));
          if k >= lag then
            with_retry (fun () ->
                ignore
                  (Apps.Tc_store.delete w
                     (Int64.of_int (((k - lag) * threads) + i))))
        done)
  done;
  Sim.run sim;
  let total_ops = threads * (ops + max 0 (ops - 16)) in
  let tput =
    Workload.Stats.throughput_per_s ~ops:total_ops ~elapsed_ns:(Sim.now sim)
  in
  cleanup ();
  tput

let table4 () =
  Workload.Report.section "table4"
    "application update throughput (OpenLDAP: 4 server threads; TC: 1 thread)";
  let ldap_bdb = run_ldap `Bdb in
  let ldap_ldbm = run_ldap `Ldbm in
  let ldap_mnemo = run_ldap `Mnemosyne in
  let tc_msync_64 = run_tc `Msync ~value_bytes:64 in
  let tc_msync_1k = run_tc `Msync ~value_bytes:1024 in
  let tc_mnemo_64 = run_tc `Mnemosyne ~value_bytes:64 in
  let tc_mnemo_1k = run_tc `Mnemosyne ~value_bytes:1024 in
  Workload.Report.table
    ~header:[ "application"; "backend"; "workload"; "updates/s"; "paper" ]
    [
      [ "OpenLDAP"; "back-bdb on PCM-disk"; "SLAMD adds";
        Workload.Report.ops ldap_bdb; "5,428/s" ];
      [ "OpenLDAP"; "back-ldbm on PCM-disk"; "SLAMD adds";
        Workload.Report.ops ldap_ldbm; "6,024/s" ];
      [ "OpenLDAP"; "back-mnemosyne"; "SLAMD adds";
        Workload.Report.ops ldap_mnemo; "7,350/s" ];
      [ "Tokyo Cabinet"; "msync on PCM-disk"; "64B";
        Workload.Report.ops tc_msync_64; "19,382/s" ];
      [ "Tokyo Cabinet"; "msync on PCM-disk"; "1024B";
        Workload.Report.ops tc_msync_1k; "2,044/s" ];
      [ "Tokyo Cabinet"; "Mnemosyne"; "64B";
        Workload.Report.ops tc_mnemo_64; "42,057/s" ];
      [ "Tokyo Cabinet"; "Mnemosyne"; "1024B";
        Workload.Report.ops tc_mnemo_1k; "30,361/s" ];
    ];
  Workload.Report.note
    (Printf.sprintf
       "back-mnemosyne/back-bdb = %.2fx (paper 1.35x); TC Mnemosyne/msync = %.1fx at 64B, %.1fx at 1024B (paper ~2.2x, ~14.9x)"
       (ldap_mnemo /. ldap_bdb)
       (tc_mnemo_64 /. tc_msync_64)
       (tc_mnemo_1k /. tc_msync_1k));
  (* The paper's multi-thread aside: TC/Mnemosyne degrades from tree
     contention (-9%); TC/msync gains little (+10%) because msync
     serializes in the kernel.  To expose the storage-layer effect we
     strip the per-request library cost and saturate with 4 threads. *)
  let probe backend =
    let t1 = run_tc ~threads:1 ~request_ns:500 backend ~value_bytes:64 in
    let t4 = run_tc ~threads:4 ~request_ns:500 backend ~value_bytes:64 in
    t4 /. t1
  in
  let m_scale = probe `Mnemosyne and s_scale = probe `Msync in
  Workload.Report.note
    (Printf.sprintf
       "storage-bound 4-thread scaling at 64B: Mnemosyne %.2fx (paper: degrades ~9%%, tree contention)"
       m_scale);
  Workload.Report.note
    (Printf.sprintf
       "                                       msync %.2fx (paper: ~+10%%, msync serializes in the kernel)"
       s_scale)

(* ------------------------------------------------------------------ *)
(* Table 5: red-black tree updates vs Boost serialization              *)

let table5 () =
  Workload.Report.section "table5"
    "red-black tree updates (Mnemosyne) vs whole-tree serialization (Boost style)";
  let tree_sizes =
    [ (1024, "1 K"); (8192, "8 K"); (65536, "64 K"); (262144, "256 K") ]
  in
  (* 256 Ki nodes of 128 B live entirely in superblocks: size the heap
     for them (36 MiB of superblocks inside a 96 MiB device). *)
  let rb_geometry =
    {
      Mnemosyne.scm_frames = 24576;
      heap_superblocks = 4608;
      heap_large_bytes = 1 lsl 20;
    }
  in
  let rows =
    List.map
      (fun (n, label) ->
        let dir = fresh_dir "rbt" in
        let inst = Mnemosyne.open_instance ~geometry:rb_geometry ~dir () in
        let slot = Mnemosyne.pstatic inst "bench.rb" 8 in
        let tree =
          Mnemosyne.atomically inst (fun tx ->
              Pstruct.Rb_tree.create tx ~slot ())
        in
        let kg = Workload.Keygen.create ~seed:n () in
        let mirror = ref [] in
        let lat = Workload.Stats.create () in
        let env = (Mnemosyne.view inst).Region.Pmem.env in
        let measured = min 400 (n / 4) in
        for i = 0 to n - 1 do
          let key = Int64.of_int (i * 2654435761 land 0x3fff_ffff) in
          let payload = Workload.Keygen.value kg 88 in
          let t0 = env.now () in
          Mnemosyne.atomically inst (fun tx ->
              Pstruct.Rb_tree.put tx tree key payload);
          if i >= n - measured then Workload.Stats.add lat (env.now () - t0);
          mirror := (key, payload) :: !mirror
        done;
        (* the Boost-style alternative: DRAM tree serialized to a file *)
        let disk = Baseline.Pcm_disk.create ~nblocks:16384 () in
        let senv = Scm.Env.standalone (Mnemosyne.machine inst) in
        let t0 = senv.now () in
        ignore
          (Baseline.Serializer.serialize disk senv ~start_block:0 !mirror);
        let ser_us = float_of_int (senv.now () - t0) /. 1000.0 in
        let ins_us = Workload.Stats.mean_us lat in
        rm_rf dir;
        [ label; Printf.sprintf "%.1f us" ins_us;
          Printf.sprintf "%.0f us" ser_us;
          Printf.sprintf "%.0f" (ser_us /. ins_us) ])
      tree_sizes
  in
  Workload.Report.table
    ~header:
      [ "tree size"; "insert latency"; "serialize latency";
        "inserts per serialization" ]
    rows;
  Workload.Report.note
    "paper: 4.7-5.8 us inserts; 517 us - 144 ms serializations; 189-24,788 inserts/serialization"

(* ------------------------------------------------------------------ *)
(* Table 6: base vs tornbit RAWL throughput                            *)

let table6 () =
  Workload.Report.section "table6"
    "log append throughput: base (commit record) vs tornbit RAWL";
  let dir = fresh_dir "rawl" in
  let inst = Mnemosyne.open_instance ~geometry ~dir () in
  let v = Mnemosyne.view inst in
  let cap_words = 262144 in
  let run_one kind size =
    let words = max 1 (size / 8) in
    let record = Array.init words (fun i -> Int64.of_int ((i * 17) + size)) in
    let iters = max 1000 (min 20000 (4_000_000 / size)) in
    let env = v.Region.Pmem.env in
    let t0 = env.now () in
    (match kind with
    | `Tornbit ->
        let base =
          Mnemosyne.pmap inst (Pmlog.Rawl.region_bytes_for ~cap_words)
        in
        let log = Pmlog.Rawl.create v ~base ~cap_words in
        for _ = 1 to iters do
          (match Pmlog.Rawl.append log record with
          | Pmlog.Rawl.Appended _ -> ()
          | Pmlog.Rawl.Full ->
              Pmlog.Rawl.truncate_all log;
              ignore (Pmlog.Rawl.append log record));
          Pmlog.Rawl.flush log
        done
    | `Base ->
        let base =
          Mnemosyne.pmap inst (Pmlog.Commit_log.region_bytes_for ~cap_words)
        in
        let log = Pmlog.Commit_log.create v ~base ~cap_words in
        for _ = 1 to iters do
          match Pmlog.Commit_log.append log record with
          | Pmlog.Commit_log.Appended _ -> ()
          | Pmlog.Commit_log.Full ->
              Pmlog.Commit_log.truncate_all log;
              ignore (Pmlog.Commit_log.append log record)
        done);
    let elapsed = env.now () - t0 in
    (* bytes/ns x 1000 = MB/s *)
    float_of_int (iters * size) *. 1000.0 /. float_of_int elapsed
  in
  let rows =
    [
      "Base (MB/s)"
      :: List.map (fun s -> Printf.sprintf "%.0f" (run_one `Base s)) sizes;
      "Tornbit (MB/s)"
      :: List.map (fun s -> Printf.sprintf "%.0f" (run_one `Tornbit s)) sizes;
    ]
  in
  Workload.Report.table
    ~header:("record size (B)" :: List.map string_of_int sizes)
    rows;
  Workload.Report.note
    "paper: base 17/128/416/881/1088/1244; tornbit 34/227/591/929/1045/1093";
  Workload.Report.note
    "shape: tornbit ~2x better at small records, worse above ~2 KB";
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Figure 6: asynchronous vs synchronous log truncation                *)

let run_truncation_mode ~mode ~value_bytes ~idle_pct =
  let dir = fresh_dir "trunc" in
  let mtm =
    { Mtm.Txn.default_config with truncation = mode; log_cap_words = 65536 }
  in
  let inst = Mnemosyne.open_instance ~geometry ~mtm ~dir () in
  let machine = Mnemosyne.machine inst in
  let sim = bench_sim () in
  let heap_mu = Sim.Mutex_r.create sim in
  Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
      Sim.Mutex_r.with_lock heap_mu f);
  let slot = Mnemosyne.pstatic inst "bench.ht" 8 in
  let table =
    Mnemosyne.atomically inst (fun tx ->
        Pstruct.Phashtable.create tx ~slot ~buckets:512)
  in
  let lat = Workload.Stats.create () in
  let done_flag = ref false in
  let producer_thread = ref None in
  (* The truncation thread shares the machine with the producer: it only
     gets CPU during the producer's idle windows (the paper runs both on
     the same loaded box, which is why async loses at 10% idle).  The
     producer deposits its idle time into a token bucket; the daemon
     spends measured processing time from it. *)
  let idle_tokens = ref 0 in
  Sim.spawn sim (fun () ->
      let env = sim_env sim machine in
      let th = Mnemosyne.thread inst 0 env in
      producer_thread := Some th;
      let kg = Workload.Keygen.create ~seed:5 () in
      for k = 0 to 199 do
        let t0 = Sim.now sim in
        Mtm.Txn.run th (fun tx ->
            Pstruct.Phashtable.put tx table
              (Bytes.of_string (Printf.sprintf "k%06d" k))
              (Workload.Keygen.value kg value_bytes));
        let op_ns = Sim.now sim - t0 in
        Workload.Stats.add lat op_ns;
        (* duty cycle: idle_pct percent of wall time idle *)
        let idle_ns = op_ns * idle_pct / (100 - idle_pct) in
        idle_tokens := !idle_tokens + idle_ns;
        Sim.delay sim idle_ns
      done;
      done_flag := true);
  if mode = Mtm.Txn.Async then
    Sim.spawn sim (fun () ->
        let dview = Region.Pmem.view (Mnemosyne.pmem inst) (sim_env sim machine) in
        while not !done_flag do
          (match !producer_thread with
          | Some th when !idle_tokens > 0 ->
              let t0 = Sim.now sim in
              if Mtm.Txn.process_one_truncation th dview then
                idle_tokens := !idle_tokens - (Sim.now sim - t0)
              else Sim.delay sim 1_000
          | Some _ | None -> Sim.delay sim 1_000)
        done;
        (* once the workload ends the machine is idle: drain *)
        match !producer_thread with
        | Some th -> ignore (Mtm.Txn.process_truncations th dview)
        | None -> ());
  Sim.run sim;
  rm_rf dir;
  Workload.Stats.mean_us lat

let figure6 () =
  Workload.Report.section "figure6"
    "write-latency change, asynchronous vs synchronous truncation (%)";
  let idles = [ 90; 50; 10 ] in
  let rows =
    List.map
      (fun size ->
        string_of_int size
        :: List.map
             (fun idle ->
               let sync =
                 run_truncation_mode ~mode:Mtm.Txn.Sync ~value_bytes:size
                   ~idle_pct:idle
               in
               let async =
                 run_truncation_mode ~mode:Mtm.Txn.Async ~value_bytes:size
                   ~idle_pct:idle
               in
               Printf.sprintf "%+.0f%%" ((sync -. async) /. sync *. 100.0))
             idles)
      sizes
  in
  Workload.Report.table
    ~header:
      ("value size" :: List.map (fun i -> Printf.sprintf "%d%% idle" i) idles)
    rows;
  Workload.Report.note
    "positive = async is faster.  paper: +7..31% at 90/50% idle;";
  Workload.Report.note
    "negative at 10% idle for large values (up to -42%): the truncation";
  Workload.Report.note
    "daemon's flushes contend for PCM write bandwidth with the producer"

(* ------------------------------------------------------------------ *)
(* Reincarnation costs (section 6.3.2)                                 *)

let reincarnation () =
  Workload.Report.section "reincarnation"
    "cost of coming back: boot scan, region remap, heap scavenge, log replay";
  let dir = fresh_dir "reinc" in
  let mtm = { Mtm.Txn.default_config with truncation = Mtm.Txn.Async } in
  let inst = Mnemosyne.open_instance ~geometry ~mtm ~dir () in
  (* populate a hash table; with async truncation and no daemon the
     final transactions are committed but never flushed, so recovery
     has work to do *)
  let slot = Mnemosyne.pstatic inst "bench.ht" 8 in
  let table =
    Mnemosyne.atomically inst (fun tx ->
        Pstruct.Phashtable.create tx ~slot ~buckets:1024)
  in
  let kg = Workload.Keygen.create () in
  for k = 0 to 1999 do
    Mnemosyne.atomically inst (fun tx ->
        Pstruct.Phashtable.put tx table (Workload.Keygen.seq_key k)
          (Workload.Keygen.value kg 64))
  done;
  let inst = Mnemosyne.reincarnate inst in
  let stats = Mnemosyne.reincarnation_stats inst in
  let frames = geometry.Mnemosyne.scm_frames in
  let per_frame = stats.boot_ns / frames in
  let gb_frames = 1 lsl 18 in
  Workload.Report.table
    ~header:[ "cost"; "measured"; "paper" ]
    [
      [ "OS boot: mapping-table scan";
        Printf.sprintf "%.1f ms (%d frames)"
          (float_of_int stats.boot_ns /. 1e6)
          frames;
        "734 ms for 1 GB" ];
      [ "  extrapolated to 1 GB SCM";
        Printf.sprintf "%.0f ms" (float_of_int (per_frame * gb_frames) /. 1e6);
        "734 ms" ];
      [ "process start: region remap";
        Printf.sprintf "%.2f ms" (float_of_int stats.remap_ns /. 1e6);
        "~1.1 ms" ];
      [ "process start: heap scavenge";
        Printf.sprintf "%.2f ms" (float_of_int stats.heap_scavenge_ns /. 1e6);
        "~89 ms (their larger heap)" ];
      [ "transactions replayed"; string_of_int stats.txns_replayed;
        "bounded by threads (sync)" ];
      [ "replay cost";
        (if stats.txns_replayed = 0 then "0 us"
         else
           Printf.sprintf "%.1f us total, %.1f us/txn"
             (float_of_int stats.txn_replay_ns /. 1e3)
             (float_of_int stats.txn_replay_ns
              /. float_of_int stats.txns_replayed /. 1e3));
        "3-76 us per txn" ];
    ];
  (* verify the reincarnated data is intact *)
  let ok =
    Mnemosyne.atomically inst (fun tx ->
        let table =
          Pstruct.Phashtable.attach tx
            ~root:(Int64.to_int (Mtm.Txn.load tx slot))
        in
        Pstruct.Phashtable.length tx table = 2000)
  in
  Workload.Report.note
    (if ok then
       "post-reincarnation integrity check: 2000/2000 entries present"
     else "post-reincarnation integrity check FAILED");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)

(* Redo vs undo logging (paper section 5's discussion): same hashtable
   workload under both version-management policies. *)
let ablation_undo () =
  Workload.Report.section "ablation_undo"
    "durable transactions: lazy redo (Mnemosyne) vs eager undo logging (us/insert)";
  let run mode value_bytes =
    let dir = fresh_dir "undo" in
    let mtm = { Mtm.Txn.default_config with version_mgmt = mode } in
    let inst = Mnemosyne.open_instance ~geometry ~mtm ~dir () in
    let slot = Mnemosyne.pstatic inst "bench.ht" 8 in
    let table =
      Mnemosyne.atomically inst (fun tx ->
          Pstruct.Phashtable.create tx ~slot ~buckets:512)
    in
    let env = (Mnemosyne.view inst).Region.Pmem.env in
    let kg = Workload.Keygen.create () in
    let lat = Workload.Stats.create () in
    for k = 0 to 149 do
      let t0 = env.now () in
      Mnemosyne.atomically inst (fun tx ->
          Pstruct.Phashtable.put tx table
            (Bytes.of_string (Printf.sprintf "k%06d" k))
            (Workload.Keygen.value kg value_bytes));
      Workload.Stats.add lat (env.now () - t0)
    done;
    rm_rf dir;
    Workload.Stats.mean_us lat
  in
  let rows =
    List.map
      (fun size ->
        let redo = run Mtm.Txn.Lazy_redo size in
        let undo = run Mtm.Txn.Eager_undo size in
        [ string_of_int size; Printf.sprintf "%.1f" redo;
          Printf.sprintf "%.1f" undo; Printf.sprintf "%.2fx" (undo /. redo) ])
      sizes
  in
  Workload.Report.table
    ~header:[ "value size"; "redo"; "undo"; "undo/redo" ]
    rows;
  Workload.Report.note
    "the paper chooses redo because undo \"would require ordering a log";
  Workload.Report.note
    "write before every memory update\": each first write to a word costs";
  Workload.Report.note "a fence, so undo degrades as the write set grows"

(* Wear leveling (paper section 4.5): a skewed transactional workload
   concentrates media writes; one leveling pass spreads them. *)
let ablation_wear () =
  Workload.Report.section "ablation_wear"
    "wear leveling: per-frame write concentration under a skewed workload";
  let run ~level =
    let dir = fresh_dir "wear" in
    let inst = Mnemosyne.open_instance ~geometry ~dir () in
    let v = Mnemosyne.view inst in
    let r = Mnemosyne.pmap inst (16 * 4096) in
    let kg = Workload.Keygen.create () in
    let zipf = Workload.Keygen.Zipf.make kg ~n:16 ~theta:1.2 in
    for i = 0 to 3999 do
      let page = Workload.Keygen.Zipf.draw zipf in
      Region.Pmem.wtstore v
        (r + (page * 4096) + (8 * (i mod 512)))
        (Int64.of_int i);
      Region.Pmem.fence v;
      if level && i mod 500 = 499 then
        ignore (Region.Pmem.wear_level v ~threshold:2.0)
    done;
    let dev = (Mnemosyne.machine inst).dev in
    let writes =
      List.init (Scm.Scm_device.nframes dev) (fun f ->
          Scm.Scm_device.write_count dev f)
    in
    let hottest = List.fold_left max 0 writes in
    let total = List.fold_left ( + ) 0 writes in
    rm_rf dir;
    (hottest, total)
  in
  let hot0, total0 = run ~level:false in
  let hot1, total1 = run ~level:true in
  Workload.Report.table
    ~header:[ "configuration"; "hottest frame"; "total writes"; "peak share" ]
    [
      [ "no leveling"; string_of_int hot0; string_of_int total0;
        Printf.sprintf "%.1f%%" (100. *. float_of_int hot0 /. float_of_int total0) ];
      [ "leveling every 500 txns"; string_of_int hot1; string_of_int total1;
        Printf.sprintf "%.1f%%" (100. *. float_of_int hot1 /. float_of_int total1) ];
    ];
  Workload.Report.note
    "paper section 4.5: \"virtualization enables remapping heavily used";
  Workload.Report.note
    "virtual pages to spread writes to different physical PCM frames\"";
  Workload.Report.note
    "(leveling costs extra copy writes, so total writes rise slightly)"

(* Torn-bit rotation (paper section 4.5): how concentrated are the
   always-flipping bits without rotation. *)
let ablation_tornbit_rotation () =
  Workload.Report.section "ablation_tornbit"
    "torn-bit rotation: flips absorbed by the hottest bit column";
  let run ~rotate =
    let dir = fresh_dir "torn" in
    let inst = Mnemosyne.open_instance ~geometry ~dir () in
    let v = Mnemosyne.view inst in
    let cap_words = 32 in
    let base = Mnemosyne.pmap inst (Pmlog.Rawl.region_bytes_for ~cap_words) in
    let log = Pmlog.Rawl.create ~rotate_torn_bit:rotate v ~base ~cap_words in
    (* per-bit-position flip counters, updated by diffing buffer
       snapshots around every append *)
    let flips = Array.make 64 0 in
    let snapshot () =
      Array.init cap_words (fun i ->
          Region.Pmem.load v (base + 64 + (8 * i)))
    in
    let prev = ref (snapshot ()) in
    let record = Array.make 12 0x5555_5555L in
    for round = 1 to 40 * Pmlog.Rawl.rotate_period do
      record.(0) <- Int64.of_int round;
      (match Pmlog.Rawl.append log record with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> failwith "unexpected Full");
      Pmlog.Rawl.flush log;
      Pmlog.Rawl.truncate_all log;
      let cur = snapshot () in
      Array.iteri
        (fun i w ->
          let diff = Int64.logxor w !prev.(i) in
          for b = 0 to 63 do
            if Scm.Word.bit diff b then flips.(b) <- flips.(b) + 1
          done)
        cur;
      prev := cur
    done;
    let total = Array.fold_left ( + ) 0 flips in
    let hottest = Array.fold_left max 0 flips in
    rm_rf dir;
    (hottest, total)
  in
  let h0, t0 = run ~rotate:false in
  let h1, t1 = run ~rotate:true in
  Workload.Report.table
    ~header:
      [ "configuration"; "hottest bit column flips"; "all flips";
        "peak share" ]
    [
      [ "fixed torn bit (bit 63)"; string_of_int h0; string_of_int t0;
        Printf.sprintf "%.1f%%" (100. *. float_of_int h0 /. float_of_int t0) ];
      [ Printf.sprintf "rotated every %d passes" Pmlog.Rawl.rotate_period;
        string_of_int h1; string_of_int t1;
        Printf.sprintf "%.1f%%" (100. *. float_of_int h1 /. float_of_int t1) ];
    ];
  Workload.Report.note
    "paper section 4.5: \"RAWL's tornbits may periodically be shifted to";
  Workload.Report.note "avoid writing 0's and 1's continuously to the same bits\""

(* The four consistency mechanisms of paper table 2, measured on one
   logical update each: "the more specific mechanisms can provide higher
   performance for certain data structures, while the more general
   mechanisms support a wider range of usage patterns." *)
let ablation_mechanisms () =
  Workload.Report.section "ablation_mechanisms"
    "cost per update under table 2's four consistency mechanisms (us)";
  let value_sizes = [ 8; 64; 256; 1024 ] in
  let dir = fresh_dir "mech" in
  let inst = Mnemosyne.open_instance ~geometry ~dir () in
  let v = Mnemosyne.view inst in
  let env = v.Region.Pmem.env in
  let kg = Workload.Keygen.create () in
  let time_ops f =
    let t0 = env.now () in
    let n = 150 in
    for i = 0 to n - 1 do
      f i
    done;
    float_of_int (env.now () - t0) /. float_of_int n /. 1000.0
  in
  (* single variable: one atomic word, write-through + fence *)
  let counter = Mnemosyne.pstatic inst "mech.counter" 8 in
  let single _size =
    time_ops (fun i ->
        Region.Pmem.wtstore v counter (Int64.of_int i);
        Region.Pmem.fence v)
  in
  (* append: a RAWL record per update, one tornbit fence *)
  let append size =
    let cap_words = 65536 in
    let base = Mnemosyne.pmap inst (Pmlog.Rawl.region_bytes_for ~cap_words) in
    let log = Pmlog.Rawl.create v ~base ~cap_words in
    let record = Array.make (max 1 (size / 8)) 7L in
    time_ops (fun _ ->
        (match Pmlog.Rawl.append log record with
        | Pmlog.Rawl.Appended _ -> ()
        | Pmlog.Rawl.Full -> Pmlog.Rawl.truncate_all log);
        Pmlog.Rawl.flush log)
  in
  (* shadow: copy the path, fence, swing the root atomically *)
  let shadow size =
    let bytes =
      Pstruct.Shadow_tree.region_bytes_for ~payload_bytes:size ~capacity:2048
    in
    let base = Mnemosyne.pmap inst bytes in
    let st =
      Pstruct.Shadow_tree.create v ~base ~payload_bytes:size ~capacity:2048
    in
    (* a realistic working tree *)
    for i = 0 to 255 do
      Pstruct.Shadow_tree.put st
        (Int64.of_int ((i * 2654435761) land 0xffff))
        (Workload.Keygen.value kg size)
    done;
    time_ops (fun i ->
        Pstruct.Shadow_tree.put st
          (Int64.of_int (((i + 999) * 2654435761) land 0xffff))
          (Workload.Keygen.value kg size))
  in
  (* in place: a durable memory transaction on the hash table *)
  let in_place size =
    let slot = Mnemosyne.pstatic inst (Printf.sprintf "mech.ht%d" size) 8 in
    let table =
      Mnemosyne.atomically inst (fun tx ->
          Pstruct.Phashtable.create tx ~slot ~buckets:512)
    in
    time_ops (fun i ->
        Mnemosyne.atomically inst (fun tx ->
            Pstruct.Phashtable.put tx table
              (Bytes.of_string (Printf.sprintf "m%06d" i))
              (Workload.Keygen.value kg size)))
  in
  let rows =
    List.map
      (fun size ->
        [ string_of_int size;
          Printf.sprintf "%.2f" (single size);
          Printf.sprintf "%.2f" (append size);
          Printf.sprintf "%.2f" (shadow size);
          Printf.sprintf "%.2f" (in_place size) ])
      value_sizes
  in
  Workload.Report.table
    ~header:
      [ "update size"; "single variable"; "append (RAWL)"; "shadow (tree)";
        "in-place (txn)" ]
    rows;
  Workload.Report.note
    "table 2's ordering-constraint count (0 / 0 / 1 / N-1) shows up as cost:";
  Workload.Report.note
    "in-place transactions pay twice per update (log + data, section 5's";
  Workload.Report.note
    "discussion) but are the only mechanism that handles any structure";
  rm_rf dir

(* Memory-controller parallelism: what bank-level parallelism buys
   multi-threaded commit throughput. *)
let ablation_banks () =
  Workload.Report.section "ablation_banks"
    "4-thread hashtable throughput vs PCM bank parallelism (kops/s, 64 B)";
  let rows =
    List.map
      (fun banks ->
        let latency = { Scm.Latency_model.default with media_banks = banks } in
        let r =
          run_mtm_hashtable ~latency ~threads:4 ~value_bytes:64
            ~ops_per_thread:200 ()
        in
        [ string_of_int banks; Printf.sprintf "%.1f" r.tput_kops ])
      [ 1; 2; 4; 16 ]
  in
  Workload.Report.table ~header:[ "banks"; "throughput" ] rows;
  Workload.Report.note
    "with one bank every flush serializes at the controller; the paper's";
  Workload.Report.note
    "near-linear scaling presumes device-level write parallelism"

(* ------------------------------------------------------------------ *)
(* kvstore: the instrumented run behind --trace / --metrics            *)

let trace_file = ref None
let show_metrics = ref false
let metrics_json_file = ref None

(* --metrics-json: the JSON snapshot of the most recent instrumented
   registry (kvstore's, or commit_bench's last case), captured as each
   section finishes and written once at program end. *)
let metrics_json_data = ref None
let capture_metrics m = metrics_json_data := Some (Obs.Metrics.to_json m)

(* A steady-state hashtable workload with the observability layer
   surfaced: the per-phase commit-latency breakdown (paper table 5's
   spirit: where does a durable transaction spend its time), optionally
   a Chrome trace of every event and the metrics registry dump. *)
let kvstore () =
  Workload.Report.section "kvstore"
    "instrumented key-value store: commit-phase breakdown (us)";
  let dir = fresh_dir "kvstore" in
  let obs = Obs.create ~tracing:(!trace_file <> None) () in
  let inst = Mnemosyne.open_instance ~geometry ~obs ~dir () in
  let tp = Obs.Txprof.create (Mnemosyne.obs inst).Obs.metrics in
  Mtm.Txn.set_txprof (Mnemosyne.pool inst) (Some tp);
  let slot = Mnemosyne.pstatic inst "bench.kv" 8 in
  let table =
    Mnemosyne.atomically inst (fun tx ->
        Pstruct.Phashtable.create tx ~slot ~buckets:1024)
  in
  let env = (Mnemosyne.view inst).Region.Pmem.env in
  let kg = Workload.Keygen.create ~seed:11 () in
  let lat = Workload.Stats.create () in
  let lag = 16 in
  for k = 0 to 499 do
    let key k = Bytes.of_string (Printf.sprintf "kv%06d" k) in
    let t0 = env.now () in
    Mnemosyne.atomically inst (fun tx ->
        Pstruct.Phashtable.put tx table (key k) (Workload.Keygen.value kg 256));
    Workload.Stats.add lat (env.now () - t0);
    if k >= lag then
      Mnemosyne.atomically inst (fun tx ->
          ignore (Pstruct.Phashtable.remove tx table (key (k - lag))))
  done;
  let m = (Mnemosyne.obs inst).Obs.metrics in
  let h name = Obs.Metrics.histogram m name in
  let total = h "mtm.commit.total_ns" in
  let total_mean = Obs.Metrics.hmean total in
  let row label hist =
    let mean = Obs.Metrics.hmean hist in
    [ label;
      Printf.sprintf "%.2f" (mean /. 1000.0);
      Printf.sprintf "%.2f"
        (float_of_int (Obs.Metrics.percentile hist 50.0) /. 1000.0);
      Printf.sprintf "%.2f"
        (float_of_int (Obs.Metrics.percentile hist 99.0) /. 1000.0);
      Printf.sprintf "%.1f%%"
        (if total_mean = 0.0 then 0.0 else 100.0 *. mean /. total_mean) ]
  in
  Workload.Report.table
    ~header:[ "commit phase"; "mean"; "p50"; "p99"; "share" ]
    [
      row "log write" (h "mtm.commit.log_write_ns");
      row "fence (durability)" (h "mtm.commit.fence_ns");
      row "write-back + truncate" (h "mtm.commit.write_back_ns");
      row "stm bookkeeping" (h "mtm.commit.stm_ns");
      row "total" total;
    ];
  Workload.Report.note
    (Printf.sprintf "%d commits; whole-txn latency %.2f us mean, %.2f us p99"
       (Obs.Metrics.hcount total) (Workload.Stats.mean_us lat)
       (float_of_int (Workload.Stats.percentile_ns lat 99.0) /. 1000.0));
  (match (!trace_file, (Mnemosyne.obs inst).Obs.trace) with
  | Some file, Some tr ->
      Obs.Trace.save_chrome tr file;
      Workload.Report.note
        (Printf.sprintf
           "chrome trace: %d events -> %s (%d dropped); load in \
            chrome://tracing or Perfetto"
           (Obs.Trace.length tr) file (Obs.Trace.dropped tr));
      print_string (Obs.Trace.summary tr)
  | _ -> ());
  if !show_metrics then begin
    Printf.printf "\ntail attribution (slowest %d of %d transactions):\n%s"
      (Obs.Txprof.captured tp) (Obs.Txprof.count tp) (Obs.Txprof.table tp);
    print_string (Obs.Metrics.dump m)
  end;
  capture_metrics m;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Commit-path wall-clock microbenchmark (the perf-trajectory anchor)  *)

(* Unlike every section above, this one measures HOST time: the cost of
   the simulator itself on the per-operation and per-commit fast paths.
   Simulated-time figures are reported alongside as a cross-check that
   wall-clock optimizations did not shift modeled results. *)
let commit_bench () =
  Workload.Report.section "commit_bench"
    "commit-path wall-clock microbenchmark (host time; sim figures as \
     cross-check)";
  let nslots = 512 in
  let run_case ~name ~writes_per_txn ~reads_per_txn ~iters =
    let dir = fresh_dir "commitb" in
    let inst = Mnemosyne.open_instance ~geometry ~dir () in
    (* Profiling is only installed for the explicit --metrics tail
       table: the ledger charges no simulated time, but its host-CPU
       cost would pollute the wall columns this section exists to
       guard.  --metrics-json alone captures the (free, always-on)
       registry below without touching the measured path. *)
    let tp =
      if !show_metrics then begin
        let tp = Obs.Txprof.create (Mnemosyne.obs inst).Obs.metrics in
        Mtm.Txn.set_txprof (Mnemosyne.pool inst) (Some tp);
        Some tp
      end
      else None
    in
    let slot = Mnemosyne.pstatic inst "bench.commit" 8 in
    let data =
      Mnemosyne.atomically inst (fun tx ->
          let a = Mtm.Txn.alloc tx (nslots * 8) ~slot in
          for i = 0 to nslots - 1 do
            Mtm.Txn.store tx (a + (8 * i)) 0L
          done;
          a)
    in
    let env = (Mnemosyne.view inst).Region.Pmem.env in
    let body i =
      Mnemosyne.atomically inst (fun tx ->
          for j = 0 to reads_per_txn - 1 do
            ignore
              (Mtm.Txn.load tx
                 (data + (8 * (((i * 7) + (j * 13)) mod nslots))))
          done;
          for j = 0 to writes_per_txn - 1 do
            Mtm.Txn.store tx
              (data + (8 * (((i * 11) + (j * 17)) mod nslots)))
              (Int64.of_int ((i * 31) + j))
          done)
    in
    (* warm the caches, the heap indexes and the lock table *)
    for i = 1 to 500 do
      body i
    done;
    let sim0 = env.now () in
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      body i
    done;
    let wall_s = Unix.gettimeofday () -. t0 in
    let minor = Gc.minor_words () -. minor0 in
    let sim_ns = env.now () - sim0 in
    rm_rf dir;
    let per_commit_ns = wall_s *. 1e9 /. float_of_int iters in
    let commits_per_s = float_of_int iters /. wall_s in
    let sim_us = float_of_int sim_ns /. float_of_int iters /. 1000.0 in
    let minor_per_commit = minor /. float_of_int iters in
    (match tp with
    | None -> ()
    | Some tp ->
        Printf.printf
          "\n%s: tail attribution (slowest %d of %d transactions):\n%s\n"
          name (Obs.Txprof.captured tp) (Obs.Txprof.count tp)
          (Obs.Txprof.table tp));
    if !show_metrics || !metrics_json_file <> None then
      capture_metrics (Mnemosyne.obs inst).Obs.metrics;
    json_add name
      [
        ("wall_commits_per_s", commits_per_s);
        ("wall_ns_per_commit", per_commit_ns);
        ("sim_us_per_commit", sim_us);
        ("minor_words_per_commit", minor_per_commit);
        ("iters", float_of_int iters);
        ("writes_per_txn", float_of_int writes_per_txn);
        ("reads_per_txn", float_of_int reads_per_txn);
      ];
    [ name;
      Printf.sprintf "%.0f" commits_per_s;
      Printf.sprintf "%.2f" (per_commit_ns /. 1000.0);
      Printf.sprintf "%.2f" sim_us;
      Printf.sprintf "%.0f" minor_per_commit ]
  in
  let rows =
    [
      run_case ~name:"commit" ~writes_per_txn:8 ~reads_per_txn:4
        ~iters:20_000;
      run_case ~name:"commit_wide" ~writes_per_txn:64 ~reads_per_txn:0
        ~iters:4_000;
      run_case ~name:"readonly" ~writes_per_txn:0 ~reads_per_txn:8
        ~iters:20_000;
    ]
  in
  Workload.Report.table
    ~header:
      [ "case"; "commits/s (wall)"; "us/commit (wall)"; "us/commit (sim)";
        "minor words/commit" ]
    rows;
  Workload.Report.note
    "host-CPU figures; the sim column must be invariant across PRs"

(* ------------------------------------------------------------------ *)
(* scale_bench: the high-thread-count commit collapse and its fix      *)

(* Every commit in the shared configuration serializes through three
   global points: the timestamp counter (a draw costs [timestamp_ns x
   active threads] of coherence traffic), the per-commit durability
   fence whose media burst serializes through the device, and a flat
   lock table small enough that distinct lines alias under a large
   footprint.  The scalable configuration leases timestamps in blocks,
   stripes the lock table, and shares one fence per group-commit drain
   window.  Both run the same workloads at 1..64 simulated threads;
   figures are simulated time, so they are deterministic and
   baseline-tracked in BENCH_scale.json like BENCH_commit.json. *)

let scale_threads = [ 1; 2; 4; 8; 16; 64 ]
let scale_txns = 128 (* per thread *)

(* The three measured configurations: [`Shared] is the original
   serialize-on-everything protocol, [`Scalable] is PR 7's leases +
   stripes + group commit, [`Pipeline] adds this PR's pipelined commit
   (write-back handed to a drainer daemon, locks released at the
   durability fence) and the adaptive contention manager. *)
let scale_cfg ~threads ~mode =
  let scalable = mode <> `Shared in
  {
    Mtm.Txn.default_config with
    nthreads = threads;
    log_cap_words = 4096;
    (* a deliberately undersized flat table (2^10 entries): at 64
       threads the disjoint working set spans ~2k cache lines, so
       index aliasing manufactures conflicts between threads that
       never touch the same data *)
    lock_bits = 10;
    ts_lease = (if scalable then 32 else 1);
    lock_stripes = (if scalable then 8 else 1);
    group_commit = scalable;
    (* a deep truncation batch: a thread's stores revisit its working
       set, so the per-drain flush of the line *union* retires many
       commits' write-back with one media write per hot line *)
    gc_trunc_batch = (if scalable then 32 else Mtm.Txn.default_config.gc_trunc_batch);
    pipeline = (mode = `Pipeline);
    (* a deep in-flight window so each drainer sweep retires many of a
       thread's commits at once and the line-union flush dedupes as
       well as the scalable config's 32-deep inline batch *)
    pipe_window = 32;
    cm = (if mode = `Pipeline then Mtm.Txn.Cm_adaptive else Mtm.Txn.Cm_legacy);
  }

type scale_result = {
  sc_per_s : float;  (* committed txns per simulated second *)
  sc_aborts : int;
  sc_retries : int;
  sc_contention : int;  (* run calls that gave up (Txn.Contention) *)
  sc_stalls : int;  (* log-full stalls *)
  sc_false_conflicts : int;  (* mtm.lock.false_conflicts *)
  sc_backoff_ns : int;  (* retry backoff + contention-manager waits *)
}

let run_scale ~threads ~mode ~contended =
  let dir = fresh_dir "scale" in
  let sim = bench_sim () in
  let inst =
    Mnemosyne.open_instance ~geometry ~mtm:(scale_cfg ~threads ~mode) ~dir ()
  in
  let machine = Mnemosyne.machine inst in
  let heap_mu = Sim.Mutex_r.create sim in
  Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
      Sim.Mutex_r.with_lock heap_mu f);
  let nslots = if contended then 64 else 256 (* per thread *) in
  let slab_words = if contended then nslots else threads * nslots in
  (* One root slot, one slab: the first worker to commit allocates it
     (the slot write makes the race transactional), everyone else binds
     it; disjoint mode carves thread-private windows out of the slab.
     The words start device-zeroed, so nobody initializes them — setup
     is a single tiny transaction and no handle but the workers' ever
     touches the logs. *)
  let slot = Mnemosyne.pstatic inst "scale.slab" 8 in
  (* Thread 0 allocates and publishes the slab; the rest poll a
     volatile cell.  Racing the binding transactionally instead would
     have 15+ threads hammering [slot]'s lock while the allocator
     commits, and that startup churn — hundreds of aborts — would
     drown the steady-state figures this bench is after. *)
  let published = ref 0 in
  let t0 = ref 0 in
  let t_end = ref 0 in
  let contention = ref 0 in
  (* The pipelined config's first-class drainers: DES daemons sweeping
     the workers' pending write-backs, woken by commits, stopped by
     the last finishing worker (stop drains leftovers first, so no
     parked process survives to deadlock the run).  One daemon
     serializes every producer's flush traffic through a single fiber
     and caps the whole pool at its throughput, so the drainer is
     sharded — one per 4 workers, each sweeping the threads whose
     [id mod nshards] it owns and woken only by their commits. *)
  let pool = Mnemosyne.pool inst in
  let services = ref [||] in
  (if mode = `Pipeline then begin
     let nshards = max 1 (threads / 4) in
     let svcs =
       Array.init nshards (fun k ->
           let dview =
             Region.Pmem.view (Mtm.Txn.pmem pool) (sim_env sim machine)
           in
           Sim.Service.spawn sim ~work:(fun () ->
               Mtm.Txn.drain_pipeline ~shard:(k, nshards) pool dview))
     in
     Mtm.Txn.set_drain_wake pool
       (Some (fun tid -> Sim.Service.wake svcs.(tid mod nshards)));
     services := svcs
   end);
  let running = ref threads in
  for i = 0 to threads - 1 do
    Sim.spawn sim (fun () ->
        let env = sim_env sim machine in
        let th = Mnemosyne.thread inst i env in
        let rec with_retry f =
          try Mtm.Txn.run th f
          with Mtm.Txn.Contention ->
            incr contention;
            Sim.delay sim 2_000;
            with_retry f
        in
        let base =
          if i = 0 then begin
            let b =
              with_retry (fun tx ->
                  Mtm.Txn.alloc tx ((slab_words * 8) + 64) ~slot)
            in
            published := b;
            t0 := Sim.now sim;
            b
          end
          else begin
            while !published = 0 do
              Sim.delay sim 1_000
            done;
            !published
          end
        in
        (* Round up to a 64-byte line so thread windows share no cache
           line: one lock covers one line, and a boundary line shared
           by two windows would couple "disjoint" threads through that
           lock (conflicts, and version floors from the neighbour's
           lease window). *)
        let base = (base + 63) land lnot 63 in
        let data = if contended then base else base + (8 * nslots * i) in
        for k = 1 to scale_txns do
          with_retry (fun tx ->
              for j = 0 to 3 do
                ignore
                  (Mtm.Txn.load tx
                     (data + (8 * (((k * 7) + (j * 13) + (i * 29)) mod nslots))))
              done;
              for j = 0 to 7 do
                Mtm.Txn.store tx
                  (data + (8 * (((k * 11) + (j * 17) + (i * 41)) mod nslots)))
                  (Int64.of_int ((k * 31) + j))
              done)
        done;
        (* the workload window closes at the last commit: the drainer's
           tail sweep after the final worker exits is deferred work the
           scalable config also leaves unpriced (its leftover queued
           truncations are simply dropped) *)
        t_end := max !t_end (Sim.now sim);
        decr running;
        if !running = 0 then Array.iter Sim.Service.stop !services)
  done;
  Sim.run sim;
  let stats = Mtm.Txn.stats pool in
  let fc =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter
         (Mnemosyne.obs inst).Obs.metrics
         "mtm.lock.false_conflicts")
  in
  let backoff = Mtm.Txn.backoff_ns pool in
  rm_rf dir;
  {
    (* Rate over the workload window — from slab publication to the
       last commit — so the one-time setup (allocation, first-touch
       page faults of the slab) prices neither configuration. *)
    sc_per_s =
      float_of_int (threads * scale_txns)
      /. float_of_int (max 1 (!t_end - !t0))
      *. 1e9;
    sc_aborts = stats.Mtm.Txn.aborts;
    sc_retries = stats.Mtm.Txn.retries;
    sc_contention = !contention;
    sc_stalls = stats.Mtm.Txn.log_full_stalls;
    sc_false_conflicts = fc;
    sc_backoff_ns = backoff;
  }

let scale_bench () =
  Workload.Report.section "scale_bench"
    "commit scalability: shared vs scalable vs pipelined commit path \
     (simulated time)";
  List.iter
    (fun contended ->
      let case = if contended then "contended" else "disjoint" in
      let kvs = ref [] in
      let rows =
        List.map
          (fun n ->
            let sh = run_scale ~threads:n ~mode:`Shared ~contended in
            let sc = run_scale ~threads:n ~mode:`Scalable ~contended in
            let pi = run_scale ~threads:n ~mode:`Pipeline ~contended in
            let speedup = sc.sc_per_s /. sh.sc_per_s in
            let pi_speedup = pi.sc_per_s /. sh.sc_per_s in
            kvs :=
              !kvs
              @ [
                  (Printf.sprintf "sim_shared_t%d_commits_per_s" n, sh.sc_per_s);
                  ( Printf.sprintf "sim_scalable_t%d_commits_per_s" n,
                    sc.sc_per_s );
                  ( Printf.sprintf "sim_pipeline_t%d_commits_per_s" n,
                    pi.sc_per_s );
                  (Printf.sprintf "speedup_t%d" n, speedup);
                  (Printf.sprintf "pipeline_speedup_t%d" n, pi_speedup);
                  ( Printf.sprintf "shared_aborts_t%d" n,
                    float_of_int sh.sc_aborts );
                  ( Printf.sprintf "scalable_aborts_t%d" n,
                    float_of_int sc.sc_aborts );
                  ( Printf.sprintf "pipeline_aborts_t%d" n,
                    float_of_int pi.sc_aborts );
                ];
            (* The contended sections carry the contention-manager
               attribution: time burnt backing off, attempts retried,
               and lock-table false conflicts, per configuration —
               which policy wins and why. *)
            if contended then
              kvs :=
                !kvs
                @ List.concat_map
                    (fun (tag, r) ->
                      [
                        ( Printf.sprintf "%s_backoff_ns_t%d" tag n,
                          float_of_int r.sc_backoff_ns );
                        ( Printf.sprintf "%s_retries_t%d" tag n,
                          float_of_int r.sc_retries );
                        ( Printf.sprintf "%s_false_conflicts_t%d" tag n,
                          float_of_int r.sc_false_conflicts );
                      ])
                    [ ("shared", sh); ("scalable", sc); ("pipeline", pi) ];
            [
              string_of_int n;
              Printf.sprintf "%.0f" sh.sc_per_s;
              Printf.sprintf "%.0f" sc.sc_per_s;
              Printf.sprintf "%.0f" pi.sc_per_s;
              Printf.sprintf "%.2fx" speedup;
              Printf.sprintf "%.2fx" pi_speedup;
              Printf.sprintf "%d/%d/%d" sc.sc_aborts sc.sc_retries
                sc.sc_stalls;
              Printf.sprintf "%d/%d/%d" pi.sc_aborts pi.sc_retries
                pi.sc_stalls;
              string_of_int pi.sc_false_conflicts;
            ])
          scale_threads
      in
      json_add ("scale_" ^ case) !kvs;
      Workload.Report.table
        ~header:
          [
            case ^ " thr";
            "shared c/s";
            "scalable c/s";
            "pipeline c/s";
            "scal x";
            "pipe x";
            "sc ab/rt/st";
            "pi ab/rt/st";
            "pi falseconf";
          ]
        rows)
    [ false; true ];
  Workload.Report.note
    "simulated-time figures (deterministic), workload window only: shared = \
     lease 1, flat locks, fence + truncation per commit; scalable = lease 32, \
     8 stripes, group commit, 32-deep truncation batches; pipeline = \
     scalable + write-back drainer daemon (locks released at the durability \
     fence) + adaptive contention manager.  Speedups are vs shared."

(* ------------------------------------------------------------------ *)
(* serve_bench: multi-tenant serving under open-loop load              *)

(* The serving flagship (ROADMAP item 1): the same bursty open-loop
   traffic is offered to two configurations of the Serve front-end.
   "legacy" has every admission gate off — requests queue without
   bound and a full RAWL is discovered by the producer wedging inline
   (the paper's figure-6 stall regime) — while "admission" runs the
   per-tenant queue caps, the RAWL-occupancy dispatch gate and the
   drainer boost.  The MMPP ON-state rate is provisioned well above
   the worker pool's service capacity, so every burst overloads the
   system and the difference between the two policies is exactly what
   the tail percentiles report.  Figures are simulated time, hence
   deterministic, and baseline-tracked in BENCH_serve.json: goodput is
   regression-gated like every *_per_s key, while the latency
   percentiles and shed counts ride along unGated for trend review. *)

let serve_base_cfg =
  {
    Serve.default_config with
    tenants = 4;
    workers = 8;
    users = 50_000;
    duration_ns = 3_000_000;
    arrival =
      Sim.Arrival.Mmpp
        {
          on_rate_per_s = 600_000.0;
          off_rate_per_s = 40_000.0;
          mean_on_ns = 400_000.0;
          mean_off_ns = 400_000.0;
        };
    value_bytes = 128;
    get_pct = 20;
    (* near-uniform keys: distinct cache lines defeat the drainer's
       line-union dedup, so write-back genuinely costs media time *)
    theta = 0.2;
    seed = 7;
    request_ns = 2_000;
    (* a tight per-worker RAWL and one drainer for the whole pool:
       truncation genuinely races arrivals, so bursts fill the log *)
    log_cap_words = 256;
    workers_per_drainer = 8;
    (* the drainer daemon gets the CPU once per 60 us — the paper's
       "log manager unable to execute" regime *)
    drain_period_ns = 60_000;
    slo_ns = 500_000;
  }

let run_serve name admission =
  let dir = fresh_dir ("serve-" ^ name) in
  let st =
    Serve.run ~sim:(bench_sim ()) ~geometry ~dir
      { serve_base_cfg with admission }
  in
  rm_rf dir;
  st

let serve_bench () =
  Workload.Report.section "serve_bench"
    "multi-tenant KV serving under open-loop bursts: admission control vs \
     the legacy log-full stall";
  let legacy = run_serve "legacy" Serve.Admission.legacy in
  let admit = run_serve "admission" Serve.Admission.default in
  let row name (st : Serve.stats) =
    [
      name;
      string_of_int st.Serve.offered;
      string_of_int st.Serve.completed;
      string_of_int st.Serve.slo_ok;
      Printf.sprintf "%d/%d" st.Serve.shed_queue st.Serve.shed_log;
      Workload.Report.ops st.Serve.goodput_per_s;
      Printf.sprintf "%.1f" st.Serve.p50_us;
      Printf.sprintf "%.1f" st.Serve.p99_us;
      Printf.sprintf "%.1f" st.Serve.p999_us;
      string_of_int st.Serve.log_full_stalls;
      string_of_int st.Serve.max_queue_depth;
    ]
  in
  Workload.Report.table
    ~header:
      [
        "config"; "offered"; "done"; "slo ok"; "shed q/log"; "goodput";
        "p50 us";
        "p99 us"; "p999 us"; "stalls"; "max q";
      ]
    [ row "legacy (stall)" legacy; row "admission" admit ];
  let f = float_of_int in
  json_add "serve"
    [
      ("sim_admission_goodput_per_s", admit.Serve.goodput_per_s);
      ("sim_legacy_goodput_per_s", legacy.Serve.goodput_per_s);
      ("admission_p50_us", admit.Serve.p50_us);
      ("admission_p99_us", admit.Serve.p99_us);
      ("admission_p999_us", admit.Serve.p999_us);
      ("legacy_p50_us", legacy.Serve.p50_us);
      ("legacy_p99_us", legacy.Serve.p99_us);
      ("legacy_p999_us", legacy.Serve.p999_us);
      ("admission_shed_queue", f admit.Serve.shed_queue);
      ("admission_shed_log", f admit.Serve.shed_log);
      ("admission_shed_rate", admit.Serve.shed_rate);
      ("admission_stalls", f admit.Serve.log_full_stalls);
      ("legacy_stalls", f legacy.Serve.log_full_stalls);
      ("admission_max_queue", f admit.Serve.max_queue_depth);
      ("legacy_max_queue", f legacy.Serve.max_queue_depth);
      ("admission_drain_boosts", f admit.Serve.drain_boosts);
      ("admission_completed", f admit.Serve.completed);
      ("legacy_completed", f legacy.Serve.completed);
      ("admission_slo_ok", f admit.Serve.slo_ok);
      ("legacy_slo_ok", f legacy.Serve.slo_ok);
      ("legacy_window_ns", f legacy.Serve.window_ns);
      ("admission_window_ns", f admit.Serve.window_ns);
    ];
  Workload.Report.note
    (Printf.sprintf
       "open-loop MMPP bursts (ON %.0fk/s per tenant) over 4 tenants x 8 \
        workers; legacy = no admission (unbounded queues, inline log-full \
        stalls), admission = queue cap %d + shed at %d%% RAWL occupancy + \
        drainer boost at %d%%.  p999 is arrival-to-completion, queueing \
        included: bounded under admission, collapsed under legacy."
       600.0 Serve.Admission.default.Serve.Admission.queue_cap
       Serve.Admission.default.Serve.Admission.log_high_pct
       Serve.Admission.default.Serve.Admission.boost_pct)

(* ------------------------------------------------------------------ *)
(* Table 1 (context)                                                   *)

let table1 () =
  Workload.Report.section "table1" "storage-class memory technologies";
  Workload.Report.table
    ~header:[ "technology"; "availability"; "read"; "write"; "endurance" ]
    (List.map
       (fun t ->
         Scm.Latency_model.
           [ t.name; t.availability; t.read_latency; t.write_latency;
             t.endurance ])
       Scm.Latency_model.technologies)

(* ------------------------------------------------------------------ *)
(* Wall-clock microbenches (bechamel)                                  *)

let wallclock () =
  let open Bechamel in
  let pack_words = Array.init 256 (fun i -> Int64.of_int (i * 2654435761)) in
  let tornbit_pack =
    Test.make ~name:"tornbit pack 256 words"
      (Staged.stage (fun () ->
           let sink = ref 0L in
           let packer =
             Pmlog.Bitstream.Packer.create ~emit:(fun c ->
                 sink := Int64.logxor !sink c)
           in
           Array.iter (Pmlog.Bitstream.Packer.push packer) pack_words;
           Pmlog.Bitstream.Packer.flush packer;
           !sink))
  in
  let lock_hash =
    let locks = Mtm.Lock_table.create () in
    Test.make ~name:"lock-table hash 1k addrs"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to 999 do
             acc := !acc + Mtm.Lock_table.index_of locks (i * 8)
           done;
           !acc))
  in
  let zipf =
    let kg = Workload.Keygen.create () in
    let dist = Workload.Keygen.Zipf.make kg ~n:100_000 ~theta:0.99 in
    Test.make ~name:"zipf draw x1k"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for _ = 1 to 1000 do
             acc := !acc + Workload.Keygen.Zipf.draw dist
           done;
           !acc))
  in
  let tests =
    Test.make_grouped ~name:"kernels" [ tornbit_pack; lock_hash; zipf ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Workload.Report.section "wallclock" "host-CPU microbenchmarks (bechamel)";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("commit_bench", commit_bench);
    ("scale_bench", scale_bench);
    ("serve_bench", serve_bench);
    ("table1", table1);
    ("figure4+5", figures_4_and_5);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("figure6", figure6);
    ("figure7", figure7);
    ("reincarnation", reincarnation);
    ("ablation_undo", ablation_undo);
    ("ablation_mechanisms", ablation_mechanisms);
    ("ablation_wear", ablation_wear);
    ("ablation_tornbit", ablation_tornbit_rotation);
    ("ablation_banks", ablation_banks);
    ("kvstore", kvstore);
  ]

let () =
  if not (Sys.file_exists tmp_root) then Sys.mkdir tmp_root 0o755;
  (* Exception-safe scratch cleanup: at_exit also covers [exit] calls
     (argument errors, --baseline failures) and uncaught exceptions
     from a raising section, which a [Fun.protect] around the run body
     would miss on the [exit] paths.  [rm_rf] itself must not raise or
     it would mask the real failure. *)
  at_exit (fun () -> try rm_rf tmp_root with Sys_error _ -> ());
  let json_file = ref None in
  let baseline = ref None in
  let max_regress = ref 30.0 in
  let rec parse = function
    | [] -> []
    | "--trace" :: file :: rest when String.length file > 0 && file.[0] <> '-'
      ->
        (* fail before the run, not after a few minutes of benching *)
        (try close_out (open_out file)
         with Sys_error msg ->
           Printf.eprintf "bench: cannot write trace file: %s\n" msg;
           exit 2);
        trace_file := Some file;
        parse rest
    | "--trace" :: _ ->
        prerr_endline "bench: --trace requires a FILE argument";
        exit 2
    | "--json" :: file :: rest when String.length file > 0 && file.[0] <> '-'
      ->
        (try close_out (open_out file)
         with Sys_error msg ->
           Printf.eprintf "bench: cannot write json file: %s\n" msg;
           exit 2);
        json_file := Some file;
        parse rest
    | "--json" :: _ ->
        prerr_endline "bench: --json requires a FILE argument";
        exit 2
    | "--baseline" :: file :: rest
      when String.length file > 0 && file.[0] <> '-' ->
        if not (Sys.file_exists file) then begin
          Printf.eprintf "bench: baseline file %s does not exist\n" file;
          exit 2
        end;
        baseline := Some file;
        parse rest
    | "--baseline" :: _ ->
        prerr_endline "bench: --baseline requires a FILE argument";
        exit 2
    | "--max-regress" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p > 0.0 ->
            max_regress := p;
            parse rest
        | _ ->
            prerr_endline "bench: --max-regress requires a positive number";
            exit 2)
    | "--metrics" :: rest ->
        show_metrics := true;
        parse rest
    | "--metrics-json" :: file :: rest
      when String.length file > 0 && file.[0] <> '-' ->
        (try close_out (open_out file)
         with Sys_error msg ->
           Printf.eprintf "bench: cannot write metrics-json file: %s\n" msg;
           exit 2);
        metrics_json_file := Some file;
        parse rest
    | "--metrics-json" :: _ ->
        prerr_endline "bench: --metrics-json requires a FILE argument";
        exit 2
    | "--sched-policy" :: p :: rest -> (
        match Sim.Schedule.policy_of_string p with
        | Ok policy ->
            sched_policy := policy;
            parse rest
        | Error msg ->
            Printf.eprintf "bench: %s\n" msg;
            exit 2)
    | "--sched-policy" :: [] ->
        prerr_endline "bench: --sched-policy requires fifo|shuffle|priority";
        exit 2
    | "--sched-seed" :: n :: rest -> (
        match int_of_string_opt n with
        | Some s ->
            sched_seed := s;
            parse rest
        | None ->
            prerr_endline "bench: --sched-seed requires an integer";
            exit 2)
    | "--sched-seed" :: [] ->
        prerr_endline "bench: --sched-seed requires an integer";
        exit 2
    | a :: rest -> a :: parse rest
  in
  let args = parse (List.tl (Array.to_list Sys.argv)) in
  if List.mem "--wallclock" args then wallclock ()
  else begin
    let wanted = List.filter (fun a -> a <> "--wallclock") args in
    let selected =
      if wanted = [] then
        (* --trace/--metrics/--metrics-json alone mean "show me the
           instrumented run", not "trace all thirteen sections" *)
        if !trace_file <> None || !show_metrics || !metrics_json_file <> None
        then [ ("kvstore", kvstore) ]
        else all_sections
      else
        List.filter
          (fun (name, _) ->
            List.exists
              (fun w ->
                name = w
                || (name = "figure4+5" && (w = "figure4" || w = "figure5")))
              wanted)
          all_sections
    in
    Printf.printf
      "Mnemosyne benchmark harness (simulated time; see EXPERIMENTS.md)\n";
    List.iter (fun (_, f) -> f ()) selected;
    (match !json_file with Some f -> json_write f | None -> ());
    (match (!metrics_json_file, !metrics_json_data) with
    | Some f, Some data ->
        Out_channel.with_open_text f (fun oc ->
            Out_channel.output_string oc data)
    | Some f, None ->
        Printf.eprintf
          "bench: --metrics-json %s: no instrumented section ran (kvstore \
           and commit_bench capture metrics)\n"
          f
    | None, _ -> ());
    match !baseline with
    | None -> ()
    | Some f ->
        let broken = json_check_invariants f in
        let failures = json_check_baseline f ~max_regress_pct:!max_regress in
        List.iter
          (fun m -> Printf.eprintf "perf INVARIANT BROKEN: %s\n" m)
          broken;
        List.iter
          (fun (section, key, base, cur) ->
            Printf.eprintf
              "perf REGRESSION: %s.%s fell %.1f%% (baseline %.0f, now %.0f)\n"
              section key
              ((base -. cur) /. base *. 100.0)
              base cur)
          failures;
        if broken = [] && failures = [] then
          Printf.printf
            "perf check: throughput within %.0f%% of %s; sim figures \
             bit-identical; commit allocation budget held\n"
            !max_regress f
        else exit 1
  end
